package workload

import (
	"bytes"
	"testing"

	"idde/internal/rng"
	"idde/internal/units"
)

func gen(t *testing.T, k, n, m int, seed uint64) *Workload {
	t.Helper()
	w, err := Generate(DefaultGen(k), n, m, rng.New(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func TestGenerateShape(t *testing.T) {
	w := gen(t, 5, 30, 200, 1)
	if w.K() != 5 {
		t.Errorf("K = %d", w.K())
	}
	if len(w.Requests) != 200 || len(w.Capacity) != 30 {
		t.Errorf("shape wrong: %d requests, %d capacities", len(w.Requests), len(w.Capacity))
	}
	if err := w.Validate(30, 200); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGenerateRanges(t *testing.T) {
	w := gen(t, 8, 40, 300, 2)
	for _, it := range w.Items {
		if it.Size != 30 && it.Size != 60 && it.Size != 90 {
			t.Errorf("item size %v not in {30,60,90}", it.Size)
		}
	}
	for _, a := range w.Capacity {
		if a < 30 || a > 300 {
			t.Errorf("capacity %v out of [30,300]", a)
		}
	}
	for j, reqs := range w.Requests {
		if len(reqs) < 1 || len(reqs) > 2 {
			t.Errorf("user %d has %d requests", j, len(reqs))
		}
		if len(reqs) == 2 && reqs[0] >= reqs[1] {
			t.Errorf("user %d requests not sorted/distinct: %v", j, reqs)
		}
	}
}

func TestZipfPopularityHead(t *testing.T) {
	w := gen(t, 8, 30, 5000, 3)
	counts := make([]int, 8)
	for _, reqs := range w.Requests {
		for _, k := range reqs {
			counts[k]++
		}
	}
	if counts[0] <= counts[7] {
		t.Errorf("head item (%d) not more popular than tail (%d)", counts[0], counts[7])
	}
}

func TestTotals(t *testing.T) {
	w := &Workload{
		Items:    []Item{{ID: 0, Size: 30}, {ID: 1, Size: 90}},
		Requests: [][]int{{0}, {0, 1}, {1}},
		Capacity: []units.MegaBytes{100, 50},
	}
	if w.TotalRequests() != 4 {
		t.Errorf("TotalRequests = %d", w.TotalRequests())
	}
	if w.TotalCapacity() != 150 {
		t.Errorf("TotalCapacity = %v", w.TotalCapacity())
	}
	if w.MaxItemSize() != 90 {
		t.Errorf("MaxItemSize = %v", w.MaxItemSize())
	}
}

func TestRequests2D(t *testing.T) {
	w := &Workload{
		Items:    []Item{{ID: 0, Size: 30}, {ID: 1, Size: 60}, {ID: 2, Size: 90}},
		Requests: [][]int{{0, 2}, {1}},
		Capacity: nil,
	}
	z := w.Requests2D(2)
	if !z[0][0] || z[0][1] || !z[0][2] || z[1][0] || !z[1][1] {
		t.Errorf("Requests2D wrong: %v", z)
	}
	// A larger m pads with empty rows.
	z3 := w.Requests2D(3)
	for k := range z3[2] {
		if z3[2][k] {
			t.Error("padded row not empty")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := func() *Workload {
		return &Workload{
			Items:    []Item{{ID: 0, Size: 30}, {ID: 1, Size: 60}},
			Requests: [][]int{{0}, {1}},
			Capacity: []units.MegaBytes{100},
		}
	}
	if err := base().Validate(1, 2); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	w := base()
	w.Items[1].ID = 7
	if w.Validate(1, 2) == nil {
		t.Error("bad item id accepted")
	}
	w = base()
	w.Items[0].Size = 0
	if w.Validate(1, 2) == nil {
		t.Error("zero size accepted")
	}
	w = base()
	w.Requests[0] = []int{5}
	if w.Validate(1, 2) == nil {
		t.Error("unknown item request accepted")
	}
	w = base()
	w.Requests[0] = []int{0, 0}
	if w.Validate(1, 2) == nil {
		t.Error("duplicate request accepted")
	}
	w = base()
	w.Capacity[0] = -1
	if w.Validate(1, 2) == nil {
		t.Error("negative capacity accepted")
	}
	if base().Validate(2, 2) == nil {
		t.Error("capacity/server mismatch accepted")
	}
	if base().Validate(1, 3) == nil {
		t.Error("request/user mismatch accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(DefaultGen(0), 5, 5, rng.New(1)); err == nil {
		t.Error("K=0 accepted")
	}
	cfg := DefaultGen(3)
	cfg.SizeChoices = nil
	if _, err := Generate(cfg, 5, 5, rng.New(1)); err == nil {
		t.Error("empty size choices accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := gen(t, 5, 30, 100, 9)
	b := gen(t, 5, 30, 100, 9)
	for k := range a.Items {
		if a.Items[k] != b.Items[k] {
			t.Fatal("items differ")
		}
	}
	for j := range a.Requests {
		if len(a.Requests[j]) != len(b.Requests[j]) {
			t.Fatal("requests differ")
		}
		for x := range a.Requests[j] {
			if a.Requests[j][x] != b.Requests[j][x] {
				t.Fatal("requests differ")
			}
		}
	}
}

func TestSingleItemCatalogNeverDuplicates(t *testing.T) {
	// With K=1 the "extra request" branch must not loop forever or
	// duplicate.
	w := gen(t, 1, 5, 50, 4)
	for j, reqs := range w.Requests {
		if len(reqs) != 1 || reqs[0] != 0 {
			t.Errorf("user %d requests %v", j, reqs)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := gen(t, 6, 20, 80, 5)
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := got.Validate(20, 80); err != nil {
		t.Errorf("round-trip workload invalid: %v", err)
	}
	if got.K() != w.K() || got.TotalRequests() != w.TotalRequests() || got.TotalCapacity() != w.TotalCapacity() {
		t.Error("round trip changed workload")
	}
}

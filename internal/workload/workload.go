// Package workload models the app vendor's side of an IDDE scenario:
// the catalog of data items D with sizes s_k, the request matrix ζ_{j,k}
// describing which user wants which data, and the storage reservations
// A_i available on each edge server (the Eq. 6 budget).
//
// The paper's experiments draw item sizes from {30, 60, 90} MB, storage
// reservations from [30, 300] MB per server, and leave request
// popularity unspecified; we use a Zipf popularity profile, the standard
// model for content access in edge-caching literature (a uniform profile
// is available by setting the skew to 0).
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"idde/internal/rng"
	"idde/internal/units"
)

// Item is a data item d_k in the vendor's catalog.
type Item struct {
	ID   int             `json:"id"`
	Size units.MegaBytes `json:"size"`
}

// Workload bundles everything the delivery phase optimizes over.
type Workload struct {
	Items []Item `json:"items"`
	// Requests[j] lists the item ids requested by user j, ascending;
	// it is the sparse form of the ζ_{j,k} matrix.
	Requests [][]int `json:"requests"`
	// Capacity[i] is the storage reservation A_i on server i.
	Capacity []units.MegaBytes `json:"capacity"`
}

// K reports the catalog size.
func (w *Workload) K() int { return len(w.Items) }

// TotalRequests reports Σ_j Σ_k ζ_{j,k}, the denominator of Eq. 9.
func (w *Workload) TotalRequests() int {
	total := 0
	for _, r := range w.Requests {
		total += len(r)
	}
	return total
}

// TotalCapacity reports Σ_i A_i, the system-wide storage reservation.
func (w *Workload) TotalCapacity() units.MegaBytes {
	var total units.MegaBytes
	for _, a := range w.Capacity {
		total += a
	}
	return total
}

// Requests2D materializes the dense ζ matrix, used by solvers that
// index by (user, item).
func (w *Workload) Requests2D(m int) [][]bool {
	z := make([][]bool, m)
	for j := range z {
		z[j] = make([]bool, w.K())
		if j < len(w.Requests) {
			for _, k := range w.Requests[j] {
				z[j][k] = true
			}
		}
	}
	return z
}

// MaxItemSize reports s_max, the largest item size (the fragmentation
// term of Theorem 7).
func (w *Workload) MaxItemSize() units.MegaBytes {
	var max units.MegaBytes
	for _, it := range w.Items {
		if it.Size > max {
			max = it.Size
		}
	}
	return max
}

// Validate checks internal consistency against a user count m and
// server count n.
func (w *Workload) Validate(n, m int) error {
	if len(w.Requests) != m {
		return fmt.Errorf("workload: %d request rows for %d users", len(w.Requests), m)
	}
	if len(w.Capacity) != n {
		return fmt.Errorf("workload: %d capacity entries for %d servers", len(w.Capacity), n)
	}
	for i, it := range w.Items {
		if it.ID != i {
			return fmt.Errorf("workload: item %d has id %d", i, it.ID)
		}
		if it.Size <= 0 {
			return fmt.Errorf("workload: item %d has size %v", i, it.Size)
		}
	}
	for j, reqs := range w.Requests {
		seen := make(map[int]bool, len(reqs))
		for _, k := range reqs {
			if k < 0 || k >= len(w.Items) {
				return fmt.Errorf("workload: user %d requests unknown item %d", j, k)
			}
			if seen[k] {
				return fmt.Errorf("workload: user %d requests item %d twice", j, k)
			}
			seen[k] = true
		}
	}
	for i, a := range w.Capacity {
		if a < 0 {
			return fmt.Errorf("workload: server %d has negative capacity", i)
		}
	}
	return nil
}

// GenConfig parametrizes workload generation.
type GenConfig struct {
	Items int // K
	// SizeChoices are the allowed item sizes ({30,60,90} MB in §4.2).
	SizeChoices []units.MegaBytes
	// Capacity is the per-server reservation range ([30,300] MB).
	Capacity [2]units.MegaBytes
	// ZipfSkew shapes item popularity (0 = uniform).
	ZipfSkew float64
	// ExtraRequestProb is the chance a user requests a second (distinct)
	// item; every user requests at least one, as in the paper's example
	// where most users want one item and some want two.
	ExtraRequestProb float64
}

// DefaultGen mirrors §4.2 for a K-item catalog.
func DefaultGen(items int) GenConfig {
	return GenConfig{
		Items:            items,
		SizeChoices:      []units.MegaBytes{30, 60, 90},
		Capacity:         [2]units.MegaBytes{30, 300},
		ZipfSkew:         0.8,
		ExtraRequestProb: 0.3,
	}
}

// Generate builds a workload for m users over n servers.
func Generate(cfg GenConfig, n, m int, s *rng.Stream) (*Workload, error) {
	if cfg.Items <= 0 {
		return nil, fmt.Errorf("workload: invalid item count %d", cfg.Items)
	}
	if len(cfg.SizeChoices) == 0 {
		return nil, fmt.Errorf("workload: no size choices")
	}
	w := &Workload{
		Items:    make([]Item, cfg.Items),
		Requests: make([][]int, m),
		Capacity: make([]units.MegaBytes, n),
	}
	items := s.Split("items")
	for k := range w.Items {
		w.Items[k] = Item{ID: k, Size: cfg.SizeChoices[items.IntN(len(cfg.SizeChoices))]}
	}
	cap := s.Split("capacity")
	for i := range w.Capacity {
		w.Capacity[i] = units.MegaBytes(cap.IntRange(int(cfg.Capacity[0]), int(cfg.Capacity[1])))
	}
	req := s.Split("requests")
	zipf := req.NewZipf(cfg.ZipfSkew, cfg.Items)
	for j := 0; j < m; j++ {
		first := zipf.Draw()
		w.Requests[j] = []int{first}
		if cfg.Items > 1 && req.Bool(cfg.ExtraRequestProb) {
			second := zipf.Draw()
			for second == first {
				second = zipf.Draw()
			}
			w.Requests[j] = append(w.Requests[j], second)
			sort.Ints(w.Requests[j])
		}
	}
	return w, w.Validate(n, m)
}

// Save writes the workload as indented JSON.
func (w *Workload) Save(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w)
}

// Load reads a workload from JSON (validation is the caller's job,
// since it needs the topology dimensions).
func Load(r io.Reader) (*Workload, error) {
	var w Workload
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, err
	}
	return &w, nil
}

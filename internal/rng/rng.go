// Package rng provides the deterministic randomness substrate for the
// whole repository. Every experiment in the paper is "run 50 times ...
// and the average results are reported" (§4.3); to make those runs
// reproducible bit-for-bit, all random draws flow from a Stream derived
// from a master seed through labeled Split operations, so adding a new
// consumer of randomness in one subsystem never perturbs the draws seen
// by another.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Stream is a deterministic source of random variates. It wraps the
// stdlib generator and adds labeled splitting plus the distributions the
// IDDE workloads need (uniform ranges, Zipf popularity, clustered
// Gaussian offsets).
//
// A Stream is not safe for concurrent use; Split off one Stream per
// goroutine instead — splitting is cheap and collision-resistant.
type Stream struct {
	seed uint64
	r    *rand.Rand
}

// New returns a Stream rooted at the given master seed.
func New(seed uint64) *Stream {
	return &Stream{seed: seed, r: rand.New(rand.NewSource(int64(mix(seed))))}
}

// Split derives an independent child stream identified by label. The
// derivation hashes (parent seed, label) so the same label always yields
// the same child, and distinct labels yield (with overwhelming
// probability) unrelated sequences.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.seed)
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// SplitN derives an independent child stream identified by label and an
// index, for per-item or per-replica streams.
func (s *Stream) SplitN(label string, n int) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.seed)
	h.Write(buf[:])
	h.Write([]byte(label))
	putUint64(buf[:], uint64(n))
	h.Write(buf[:])
	return New(h.Sum64())
}

// Seed reports the seed that identifies this stream.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 draws uniformly from [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uniform draws uniformly from [lo,hi). It panics if hi < lo.
func (s *Stream) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform with hi < lo")
	}
	return lo + (hi-lo)*s.r.Float64()
}

// IntN draws uniformly from {0, …, n−1}. It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.r.Intn(n) }

// IntRange draws uniformly from {lo, …, hi} inclusive. It panics if
// hi < lo.
func (s *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Bool reports true with probability p (clamped to [0,1]).
func (s *Stream) Bool(p float64) bool {
	return s.r.Float64() < p
}

// Normal draws from a Gaussian with the given mean and standard
// deviation.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exp draws from an exponential distribution with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Perm returns a random permutation of {0, …, n−1}.
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes the n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Pick returns a uniformly random element index weighted by w (weights
// must be non-negative and not all zero; otherwise it falls back to
// uniform).
func (s *Stream) Pick(w []float64) int {
	total := 0.0
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return s.IntN(len(w))
	}
	x := s.r.Float64() * total
	for i, v := range w {
		if v <= 0 {
			continue
		}
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Zipf returns a sampler over {0, …, n−1} with exponent skew > 1 is not
// required; the stdlib generator needs s>1, so skew values are mapped to
// s = 1+skew with v=1, giving the usual long-tailed popularity profile
// used for content request matrices.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over n items with the given skew >= 0.
func (s *Stream) NewZipf(skew float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	return &Zipf{z: rand.NewZipf(s.r, 1+skew, 1, uint64(n-1))}
}

// Draw samples an item index in {0, …, n−1}; smaller indices are more
// popular.
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// mix is SplitMix64's finalizer; it decorrelates adjacent seeds so that
// master seeds 1,2,3,… give unrelated sequences.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

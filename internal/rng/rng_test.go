package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.IntN(1000) == b.IntN(1000) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("adjacent seeds produced %d/64 identical draws; mixing is too weak", same)
	}
}

func TestSplitIsStableAndIndependent(t *testing.T) {
	root := New(7)
	c1 := root.Split("topology")
	c2 := New(7).Split("topology")
	if c1.Seed() != c2.Seed() {
		t.Fatal("Split is not a pure function of (seed, label)")
	}
	c3 := root.Split("workload")
	if c1.Seed() == c3.Seed() {
		t.Fatal("distinct labels yielded identical child seeds")
	}
	// Drawing from the parent must not perturb children derived later.
	root2 := New(7)
	root2.Float64()
	if root2.Split("topology").Seed() != c1.Seed() {
		t.Fatal("parent draws changed child derivation")
	}
}

func TestSplitN(t *testing.T) {
	root := New(9)
	if root.SplitN("rep", 0).Seed() == root.SplitN("rep", 1).Seed() {
		t.Fatal("SplitN indices collide")
	}
	if root.SplitN("rep", 3).Seed() != New(9).SplitN("rep", 3).Seed() {
		t.Fatal("SplitN is not stable")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestUniformPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uniform(hi<lo) did not panic")
		}
	}()
	New(1).Uniform(5, 2)
}

func TestIntRange(t *testing.T) {
	s := New(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(30, 300)
		if v < 30 || v > 300 {
			t.Fatalf("IntRange(30,300) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 100 {
		t.Errorf("IntRange coverage too low: %d distinct values", len(seen))
	}
}

func TestUniformMean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Uniform(1, 5)
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.02 {
		t.Errorf("Uniform(1,5) mean = %v, want ≈3", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(6)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ≈10", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ≈4", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(0.5)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(0.5) mean = %v", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(11)
	z := s.NewZipf(0.8, 10)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		idx := z.Draw()
		if idx < 0 || idx >= 10 {
			t.Fatalf("Zipf draw %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("Zipf head (%d) not more popular than tail (%d)", counts[0], counts[9])
	}
	if counts[0] <= counts[4] {
		t.Errorf("Zipf head (%d) not more popular than middle (%d)", counts[0], counts[4])
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0 items) did not panic")
		}
	}()
	New(1).NewZipf(1, 0)
}

func TestPickWeighted(t *testing.T) {
	s := New(12)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.Pick(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight element picked %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestPickDegenerateWeightsFallsBackToUniform(t *testing.T) {
	s := New(13)
	w := []float64{0, 0, 0}
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[s.Pick(w)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("uniform fallback never picked index %d", i)
		}
	}
}

func TestPermAndShuffle(t *testing.T) {
	s := New(14)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(15)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", p)
	}
}

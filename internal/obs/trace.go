package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Event phase markers, following the Chrome trace_event convention.
const (
	PhaseBegin   = "B" // span start
	PhaseEnd     = "E" // span end
	PhaseInstant = "i" // point event
)

// Event is one recorded phase event. Tick is a logical timestamp — the
// tracer increments it once per recorded event — so traces are
// byte-reproducible across runs and machines; wall clock never appears.
// Args carries the event's attributes; encoding/json marshals the map
// with sorted keys, keeping the serialized forms deterministic too.
type Event struct {
	Tick int64  `json:"tick"`
	Ph   string `json:"ph"`
	Cat  string `json:"cat"`
	Name string `json:"name"`
	// Tid is the tracer shard that recorded the event (0 for a plain
	// tracer, the tile-worker index for a TracerShards shard). It is
	// omitted when zero, so single-tracer serializations are unchanged.
	Tid  int            `json:"tid,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records phase events under a logical clock. Safe for
// concurrent use; the engines only emit from their serialized sections,
// which is what makes the tick assignment deterministic.
//
// By default events buffer in memory for post-run rendering (JSONL,
// Chrome trace, timeline CSVs). StreamTo switches the tracer to
// pass-through mode: each event spills to the sink as a JSONL line the
// moment it is recorded, and nothing is retained — the mode that makes
// M≥10⁵ traces affordable.
type Tracer struct {
	mu        sync.Mutex
	tick      int64
	tid       int
	events    []Event
	stream    io.Writer
	streamErr error
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) emit(ph, cat, name string, args map[string]any) {
	t.record(Event{Ph: ph, Cat: cat, Name: name, Tid: t.tid, Args: args})
}

// record assigns the event the next logical tick and retains (or
// streams) it, preserving every other field — the path the shard merge
// uses to keep an event's originating shard id intact.
func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	ev.Tick = t.tick
	t.tick++
	if t.stream != nil {
		if t.streamErr == nil {
			t.streamErr = writeJSONLine(t.stream, ev)
		}
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// StreamTo attaches a streaming JSONL sink: events already buffered are
// flushed to w (and dropped), and every event recorded afterwards is
// written immediately instead of being retained in memory. The bytes
// produced are identical to a post-run WriteJSONL of the same events,
// so same-seed byte-identity is preserved across the two modes. Later
// write failures are deferred to Err — the hot path never blocks on
// error handling.
func (t *Tracer) StreamTo(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ev := range t.events {
		if err := writeJSONLine(w, ev); err != nil {
			return err
		}
	}
	t.events = nil
	t.stream = w
	t.streamErr = nil
	return nil
}

// Err reports the first write failure of the streaming sink, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.streamErr
}

// writeJSONLine marshals one event as a JSONL line — the single
// serialization both WriteJSONL and the streaming sink go through.
func writeJSONLine(w io.Writer, ev Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Begin opens a span identified by (cat, name). args may be nil.
func (t *Tracer) Begin(cat, name string, args map[string]any) {
	t.emit(PhaseBegin, cat, name, args)
}

// End closes the span identified by (cat, name).
func (t *Tracer) End(cat, name string) {
	t.emit(PhaseEnd, cat, name, nil)
}

// Instant records a point event. args may be nil.
func (t *Tracer) Instant(cat, name string, args map[string]any) {
	t.emit(PhaseInstant, cat, name, args)
}

// Len reports the number of recorded events, streamed or buffered.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.tick)
}

// Events returns a copy of the buffered events in tick order. A tracer
// in streaming mode retains nothing and returns an empty slice.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// WriteJSONL writes one JSON object per event, in tick order. For a
// fixed seed the output is byte-identical across runs (see Event), and
// byte-identical to what StreamTo would have produced live.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, ev := range t.Events() {
		if err := writeJSONLine(w, ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the trace_event JSON shape chrome://tracing and
// Perfetto load. Ts carries the logical tick (the viewer treats it as
// microseconds; only the ordering is meaningful here).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the whole trace in Chrome trace_event format
// ({"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, ev := range events {
		// Tid carries the recording shard, so a TracerShards merge
		// renders one track per tile worker in Perfetto instead of a
		// single interleaved lane.
		ce := chromeEvent{Name: ev.Name, Cat: ev.Cat, Ph: ev.Ph, Ts: ev.Tick, Pid: 1, Tid: ev.Tid, Args: ev.Args}
		if ev.Ph == PhaseInstant {
			ce.S = "t" // thread-scoped instant: renders as a tick mark
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// TimelineCSV renders the instant events matching (cat, name) as a CSV
// table: one row per event, one column per attribute named in cols
// (missing attributes render empty). It is the bridge from a recorded
// trace to the convergence-timeline artifacts under results/. Fields are
// escaped per RFC 4180, so string attributes carrying commas, quotes or
// line breaks (error messages, labels) cannot corrupt the table.
func (t *Tracer) TimelineCSV(cat, name string, cols []string) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvField(c))
	}
	b.WriteByte('\n')
	for _, ev := range t.Events() {
		if ev.Ph != PhaseInstant || ev.Cat != cat || ev.Name != name {
			continue
		}
		for i, c := range cols {
			if i > 0 {
				b.WriteByte(',')
			}
			if v, ok := ev.Args[c]; ok {
				b.WriteString(csvField(formatAttr(v)))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// csvField escapes one CSV field per RFC 4180: fields containing a
// comma, a double quote or a line break are wrapped in double quotes,
// with embedded quotes doubled. Everything else passes through verbatim,
// which keeps the numeric timelines byte-stable.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// formatAttr renders one attribute value the way the CSV and markdown
// timelines expect: integers without a decimal point, floats with %g.
func formatAttr(v any) string {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	case int:
		return fmt.Sprintf("%d", x)
	case int64:
		return fmt.Sprintf("%d", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Package obs is the solver telemetry layer: typed counters, gauges and
// log2-bucketed histograms behind a Registry, a phase-event tracer with
// a logical clock, and an opt-in live HTTP endpoint (pprof + expvar + a
// Prometheus-style /metrics dump).
//
// The design contract is "near-zero overhead when disabled": every
// engine hot path receives a *Scope that may be nil, and every Scope
// method is nil-safe and allocation-free on the nil receiver, so the
// instrumented loops cost one predictable branch when telemetry is off
// (guarded by AllocsPerRun in the package tests and by the existing
// model/perfbench alloc guards). Call sites that must build attribute
// maps gate on Scope.Tracing first, so the map construction itself is
// also skipped when no tracer is attached.
//
// Determinism contract: the tracer timestamps events with a logical
// tick (one increment per recorded event), never wall clock, and args
// maps are marshaled by encoding/json, which sorts keys. Because every
// solver in this repository is deterministic for a fixed seed, two runs
// with the same seed emit byte-identical JSONL traces — the property
// the convergence-timeline tooling and the trace regression tests rely
// on.
package obs

// Scope bundles a metrics Registry and an event Tracer for one run. The
// nil *Scope is the disabled state: every method is a no-op. A Scope
// with a Registry but no Tracer collects counters without recording
// events (see Metrics).
type Scope struct {
	reg *Registry
	tr  *Tracer
}

// New returns a fully enabled Scope: metrics registry plus tracer.
func New() *Scope {
	return &Scope{reg: NewRegistry(), tr: NewTracer()}
}

// Metrics returns a metrics-only Scope: counters, gauges and histograms
// are collected, but no trace events are recorded (Tracing reports
// false, so traced hot paths skip their attribute construction).
func Metrics() *Scope {
	return &Scope{reg: NewRegistry()}
}

// Enabled reports whether any telemetry is collected.
func (s *Scope) Enabled() bool { return s != nil }

// Tracing reports whether phase events are recorded. Hot paths check it
// before building attribute maps.
func (s *Scope) Tracing() bool { return s != nil && s.tr != nil }

// Registry returns the scope's metrics registry (nil when disabled).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the scope's tracer (nil when disabled or metrics-only).
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// Count adds d to the named counter.
func (s *Scope) Count(name string, d int64) {
	if s == nil || s.reg == nil {
		return
	}
	s.reg.Counter(name).Add(d)
}

// SetGauge sets the named gauge.
func (s *Scope) SetGauge(name string, v float64) {
	if s == nil || s.reg == nil {
		return
	}
	s.reg.Gauge(name).Set(v)
}

// Observe records v into the named log2-bucketed histogram.
func (s *Scope) Observe(name string, v float64) {
	if s == nil || s.reg == nil {
		return
	}
	s.reg.Histogram(name).Observe(v)
}

// Begin opens a span. args may be nil.
func (s *Scope) Begin(cat, name string, args map[string]any) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.Begin(cat, name, args)
}

// End closes the most recent span with the given identity.
func (s *Scope) End(cat, name string) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.End(cat, name)
}

// Instant records a point event. args may be nil.
func (s *Scope) Instant(cat, name string, args map[string]any) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.Instant(cat, name, args)
}

// Alloc guards for the "near-zero overhead when disabled" contract.
// The race detector instruments allocations, so these only run in the
// plain tier-1 `go test ./...` pass.
//
//go:build !race

package obs

import "testing"

// TestNilScopeZeroAllocs proves the disabled state costs nothing on the
// hot paths: every emitter call on a nil *Scope must be allocation-free,
// since that is exactly what the instrumented engine loops execute when
// no telemetry is attached.
func TestNilScopeZeroAllocs(t *testing.T) {
	var s *Scope
	if n := testing.AllocsPerRun(1000, func() {
		s.Count("game_rounds_total", 1)
		s.SetGauge("solve_last_avg_rate_mbps", 1.5)
		s.Observe("game_round_evals", 40)
		if s.Tracing() {
			t.Fatal("nil scope tracing")
		}
	}); n != 0 {
		t.Fatalf("nil scope emitters allocate %.1f/op, want 0", n)
	}
}

// TestMetricsScopeZeroAllocs proves a metrics-only scope keeps the
// steady state allocation-free too: after the first get-or-create, the
// counter/gauge/histogram writes and the Tracing gate (which is what
// keeps attribute maps from being built) allocate nothing.
func TestMetricsScopeZeroAllocs(t *testing.T) {
	s := Metrics()
	// Warm the registry so the measured loop is steady state.
	s.Count("c", 0)
	s.SetGauge("g", 0)
	s.Observe("h", 0)
	if n := testing.AllocsPerRun(1000, func() {
		s.Count("c", 1)
		s.SetGauge("g", 2.5)
		s.Observe("h", 17)
		if s.Tracing() {
			t.Fatal("metrics scope tracing")
		}
	}); n != 0 {
		t.Fatalf("metrics scope emitters allocate %.1f/op, want 0", n)
	}
}

// TestHistogramObserveZeroAllocs pins the Observe fast path itself.
func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(3)
		h.Observe(1024)
	}); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
}

// TestFlightSampleZeroAllocs pins the flight recorder's per-request
// gate: Sample is the only flight call the serving hot path makes for
// unsampled requests (and for every request when sampling is off), so
// both the nil-recorder and rate-0 forms must be allocation-free.
func TestFlightSampleZeroAllocs(t *testing.T) {
	var nilF *FlightRecorder
	off := NewFlightRecorder(4, 64, 0, 42)
	on := NewFlightRecorder(4, 64, 0.5, 42)
	if n := testing.AllocsPerRun(1000, func() {
		if nilF.Sample(123456789) {
			t.Fatal("nil recorder sampled")
		}
		if off.Sample(123456789) {
			t.Fatal("rate-0 recorder sampled")
		}
		on.Sample(123456789) // the decision itself is alloc-free either way
	}); n != 0 {
		t.Fatalf("FlightRecorder.Sample allocates %.1f/op, want 0", n)
	}
}

package obs

// SLO objects implement the multi-window burn-rate method: an objective
// ("at least Target of requests are good") defines an error budget of
// 1-Target, and the burn rate over a trailing window is the window's
// error rate divided by that budget — burn 1 means the budget is being
// consumed exactly at the sustainable pace, burn 14 means it would be
// gone in 1/14th of the period. An alert ("breach") requires BOTH a fast
// window and a slow window to exceed their thresholds at once: the fast
// window gives low detection latency, the slow window suppresses
// one-round blips, which is exactly the classic fast/slow burn-rate
// pairing. Evaluation periods are whatever the caller feeds Observe —
// the serving data plane feeds one observation per virtual round, so the
// whole engine runs on the virtual clock and stays deterministic.

// SLOConfig declares one objective.
type SLOConfig struct {
	// Name identifies the objective ("availability", "latency").
	Name string
	// Target is the good-fraction objective in (0,1), e.g. 0.999.
	Target float64
	// FastWindow and SlowWindow are the two trailing window lengths, in
	// evaluation periods (defaults 5 and 30).
	FastWindow, SlowWindow int
	// FastBurn and SlowBurn are the breach thresholds for the two
	// windows (defaults 14.4 and 6 — the conventional page-level pair).
	FastBurn, SlowBurn float64
}

// withDefaults fills the zero fields.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.Target <= 0 || c.Target >= 1 {
		c.Target = 0.999
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 30
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 6
	}
	return c
}

// SLOStatus is the result of one Observe: the two window burn rates and
// whether both crossed their thresholds.
type SLOStatus struct {
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Breach   bool    `json:"breach"`
}

// SLOSnapshot is the externally visible state of one SLO — the /slo
// endpoint's and the soak report's shape.
type SLOSnapshot struct {
	Name       string  `json:"name"`
	Target     float64 `json:"target"`
	Good       int64   `json:"good"`
	Total      int64   `json:"total"`
	Compliance float64 `json:"compliance"`
	FastBurn   float64 `json:"fast_burn"`
	SlowBurn   float64 `json:"slow_burn"`
	// MaxFastBurn / MaxSlowBurn are the worst burn rates seen so far;
	// Breaches counts the periods in which both windows burned at once.
	MaxFastBurn float64 `json:"max_fast_burn"`
	MaxSlowBurn float64 `json:"max_slow_burn"`
	Breaches    int64   `json:"breaches"`
}

// SLO tracks one objective over a sliding window of evaluation periods.
// Not safe for concurrent use: the engines call Observe from their
// serialized round barriers, which is also what makes the burn-rate
// trajectory deterministic.
type SLO struct {
	cfg      SLOConfig
	good     []int64 // circular, SlowWindow periods
	total    []int64
	pos      int
	filled   int
	cumGood  int64
	cumTotal int64

	last     SLOStatus
	maxFast  float64
	maxSlow  float64
	breaches int64
}

// NewSLO builds an SLO from cfg (zero fields take the defaults).
func NewSLO(cfg SLOConfig) *SLO {
	cfg = cfg.withDefaults()
	return &SLO{
		cfg:   cfg,
		good:  make([]int64, cfg.SlowWindow),
		total: make([]int64, cfg.SlowWindow),
	}
}

// Config reports the resolved configuration.
func (s *SLO) Config() SLOConfig { return s.cfg }

// windowBurn computes the burn rate over the trailing n periods.
func (s *SLO) windowBurn(n int) float64 {
	if n > s.filled {
		n = s.filled
	}
	var good, total int64
	for i := 0; i < n; i++ {
		idx := (s.pos - 1 - i + len(s.good)) % len(s.good)
		good += s.good[idx]
		total += s.total[idx]
	}
	if total == 0 {
		return 0
	}
	errRate := 1 - float64(good)/float64(total)
	return errRate / (1 - s.cfg.Target)
}

// Observe folds one evaluation period (good out of total requests met
// the objective) and returns the updated burn-rate status.
func (s *SLO) Observe(good, total int64) SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	s.good[s.pos] = good
	s.total[s.pos] = total
	s.pos = (s.pos + 1) % len(s.good)
	if s.filled < len(s.good) {
		s.filled++
	}
	s.cumGood += good
	s.cumTotal += total

	st := SLOStatus{
		FastBurn: s.windowBurn(s.cfg.FastWindow),
		SlowBurn: s.windowBurn(s.cfg.SlowWindow),
	}
	st.Breach = st.FastBurn >= s.cfg.FastBurn && st.SlowBurn >= s.cfg.SlowBurn
	if st.FastBurn > s.maxFast {
		s.maxFast = st.FastBurn
	}
	if st.SlowBurn > s.maxSlow {
		s.maxSlow = st.SlowBurn
	}
	if st.Breach {
		s.breaches++
	}
	s.last = st
	return st
}

// Snapshot reports the SLO's cumulative and windowed state.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	snap := SLOSnapshot{
		Name:        s.cfg.Name,
		Target:      s.cfg.Target,
		Good:        s.cumGood,
		Total:       s.cumTotal,
		FastBurn:    s.last.FastBurn,
		SlowBurn:    s.last.SlowBurn,
		MaxFastBurn: s.maxFast,
		MaxSlowBurn: s.maxSlow,
		Breaches:    s.breaches,
	}
	if s.cumTotal > 0 {
		snap.Compliance = float64(s.cumGood) / float64(s.cumTotal)
	}
	return snap
}

package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-global expvar publication: expvar.Publish
// panics on duplicate names, and tests (or a CLI that restarts its
// endpoint) may build several scopes in one process. The last published
// scope wins — the Func closure reads through a mutex-guarded pointer.
var (
	expvarMu    sync.Mutex
	expvarScope *Scope
	expvarInit  sync.Once
)

// publishExpvar exposes the scope's registry snapshot under the
// "idde_metrics" expvar key (served at /debug/vars alongside the
// runtime's memstats and cmdline).
func publishExpvar(s *Scope) {
	expvarMu.Lock()
	expvarScope = s
	expvarMu.Unlock()
	expvarInit.Do(func() {
		expvar.Publish("idde_metrics", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			return expvarScope.Registry().Snapshot()
		}))
	})
}

// Handler returns the live-telemetry HTTP mux for a scope:
//
//	/metrics      Prometheus text dump of the scope's registry
//	/debug/vars   expvar (incl. the registry under "idde_metrics")
//	/debug/pprof  the full net/http/pprof suite
func Handler(s *Scope) http.Handler {
	publishExpvar(s)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.Registry().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running live-telemetry endpoint.
type Server struct {
	srv  *http.Server
	addr string
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the live-telemetry endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and serves it in the background. The long-running CLIs
// wire this behind an opt-in flag; nothing is listened on by default.
func Serve(addr string, s *Scope) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(s)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, addr: ln.Addr().String()}, nil
}

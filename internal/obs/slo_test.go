package obs

import (
	"math"
	"testing"
)

func TestSLODefaults(t *testing.T) {
	s := NewSLO(SLOConfig{Name: "availability"})
	cfg := s.Config()
	if cfg.Target != 0.999 || cfg.FastWindow != 5 || cfg.SlowWindow != 30 ||
		cfg.FastBurn != 14.4 || cfg.SlowBurn != 6 {
		t.Fatalf("defaults = %+v", cfg)
	}
	var nilS *SLO
	if st := nilS.Observe(1, 1); st.Breach {
		t.Error("nil SLO breached")
	}
	if snap := nilS.Snapshot(); snap.Total != 0 {
		t.Error("nil SLO snapshot not zero")
	}
}

// TestSLOBurnRates pins the arithmetic: burn = window error rate divided
// by the error budget (1 - target).
func TestSLOBurnRates(t *testing.T) {
	s := NewSLO(SLOConfig{Name: "avail", Target: 0.99, FastWindow: 2, SlowWindow: 4, FastBurn: 10, SlowBurn: 5})
	// Perfect periods: burn 0.
	for i := 0; i < 4; i++ {
		if st := s.Observe(100, 100); st.FastBurn != 0 || st.SlowBurn != 0 || st.Breach {
			t.Fatalf("healthy period %d: %+v", i, st)
		}
	}
	// One period at 30% errors: fast window (2 periods) = 15% error rate
	// -> burn 15; slow window (4 periods) = 7.5% -> burn 7.5. Both over
	// threshold: breach.
	st := s.Observe(70, 100)
	if math.Abs(st.FastBurn-15) > 1e-9 || math.Abs(st.SlowBurn-7.5) > 1e-9 {
		t.Fatalf("burns = %+v, want fast 15 slow 7.5", st)
	}
	if !st.Breach {
		t.Fatal("both windows over threshold but no breach")
	}
	// Recovery: the first perfect period still has the incident inside
	// the 2-period fast window (a second breach); the next one pushes it
	// out while the slow window still remembers it.
	s.Observe(100, 100)
	st = s.Observe(100, 100)
	if st.FastBurn != 0 {
		t.Fatalf("fast burn %g after recovery, want 0", st.FastBurn)
	}
	if st.SlowBurn == 0 {
		t.Fatal("slow window forgot the incident too early")
	}
	if st.Breach {
		t.Fatal("breach without the fast window burning")
	}

	snap := s.Snapshot()
	if snap.Total != 7*100 || snap.Good != 670 {
		t.Fatalf("snapshot totals %d/%d", snap.Good, snap.Total)
	}
	if math.Abs(snap.Compliance-670.0/700) > 1e-12 {
		t.Fatalf("compliance %g", snap.Compliance)
	}
	if snap.Breaches != 2 || math.Abs(snap.MaxFastBurn-15) > 1e-9 {
		t.Fatalf("breaches=%d maxFast=%g", snap.Breaches, snap.MaxFastBurn)
	}
}

// TestSLOFastOnlySpikeSuppressed: a single-period spike that the slow
// window dilutes below threshold must not breach — the whole point of
// the multi-window pairing.
func TestSLOFastOnlySpikeSuppressed(t *testing.T) {
	s := NewSLO(SLOConfig{Target: 0.99, FastWindow: 1, SlowWindow: 30, FastBurn: 10, SlowBurn: 5})
	for i := 0; i < 29; i++ {
		s.Observe(1000, 1000)
	}
	st := s.Observe(800, 1000) // fast burn 20, slow burn ~0.67
	if st.FastBurn < 10 {
		t.Fatalf("fast burn %g, want >= 10", st.FastBurn)
	}
	if st.Breach {
		t.Fatal("one-period spike breached despite a calm slow window")
	}
}

// TestSLOEmptyPeriods: rounds with zero traffic must not divide by zero
// or fabricate burn.
func TestSLOEmptyPeriods(t *testing.T) {
	s := NewSLO(SLOConfig{Target: 0.999})
	for i := 0; i < 10; i++ {
		if st := s.Observe(0, 0); st.FastBurn != 0 || st.SlowBurn != 0 || st.Breach {
			t.Fatalf("empty period %d: %+v", i, st)
		}
	}
	if snap := s.Snapshot(); snap.Compliance != 0 || snap.Total != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

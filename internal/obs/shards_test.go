package obs

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// TestTracerShardsSingleShardByteIdentity pins the satellite contract:
// a one-shard TracerShards serializes byte-identically to a plain
// Tracer fed the same events — merge and re-ticking are the identity.
func TestTracerShardsSingleShardByteIdentity(t *testing.T) {
	emit := func(tr *Tracer) {
		tr.Begin("solve", "phase1", map[string]any{"tiles": 1})
		tr.Instant("game", "round", map[string]any{"round": 0, "winner": 3, "gain": 1.25})
		tr.Instant("game", "round", map[string]any{"round": 1, "winner": -1})
		tr.End("solve", "phase1")
	}
	plain := NewTracer()
	emit(plain)
	ts := NewTracerShards(1)
	emit(ts.Shard(0))

	var want, got bytes.Buffer
	if err := plain.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("no bytes produced")
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("single-shard merge not byte-identical:\n%s\nvs\n%s", got.String(), want.String())
	}
}

// TestTracerShardsMergeOrder pins the canonical order: ascending
// (shard-local tick, shard index), re-ticked from zero.
func TestTracerShardsMergeOrder(t *testing.T) {
	ts := NewTracerShards(3)
	ts.Shard(2).Instant("tile", "a2", nil) // local tick 0, shard 2
	ts.Shard(0).Instant("tile", "a0", nil) // local tick 0, shard 0
	ts.Shard(0).Instant("tile", "b0", nil) // local tick 1, shard 0
	ts.Shard(1).Instant("tile", "a1", nil) // local tick 0, shard 1

	merged := ts.Merged()
	var names []string
	for i, ev := range merged {
		if ev.Tick != int64(i) {
			t.Fatalf("event %d re-ticked to %d", i, ev.Tick)
		}
		names = append(names, ev.Name)
	}
	want := []string{"a0", "a1", "a2", "b0"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("merge order %v, want %v", names, want)
	}
}

// TestTracerShardsConcurrentDeterminism emits fixed per-worker
// sequences from concurrent goroutines (one shard each, as the tile
// workers do) and checks the merged trace is identical across repeated
// runs — the merge depends on the per-shard sequences alone, not on
// scheduling.
func TestTracerShardsConcurrentDeterminism(t *testing.T) {
	run := func() []Event {
		ts := NewTracerShards(4)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tr := ts.Shard(w)
				tr.Begin("shard", "tile", map[string]any{"tile": w})
				for r := 0; r < 5; r++ {
					tr.Instant("game", "round", map[string]any{"round": r, "tile": w})
				}
				tr.End("shard", "tile")
			}(w)
		}
		wg.Wait()
		return ts.Merged()
	}
	base := run()
	if len(base) != 4*7 {
		t.Fatalf("merged %d events, want %d", len(base), 4*7)
	}
	for i := 0; i < 10; i++ {
		if got := run(); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d merged trace diverged", i)
		}
	}
}

// TestTracerShardsMergeInto folds shard events into a tracer that
// already holds events: appended in merge order with fresh consecutive
// ticks.
func TestTracerShardsMergeInto(t *testing.T) {
	main := NewTracer()
	main.Begin("solve", "phase1", nil)
	ts := NewTracerShards(2)
	ts.Shard(1).Instant("tile", "t1", nil)
	ts.Shard(0).Instant("tile", "t0", nil)
	ts.MergeInto(main)
	main.End("solve", "phase1")

	evs := main.Events()
	var names []string
	for i, ev := range evs {
		if ev.Tick != int64(i) {
			t.Fatalf("event %d has tick %d", i, ev.Tick)
		}
		names = append(names, ev.Name)
	}
	want := []string{"phase1", "t0", "t1", "phase1"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("MergeInto order %v, want %v", names, want)
	}
}

// TestScopeWithTracer: the derived scope shares the registry (counters
// land in one place) while events go to the worker's own tracer; a nil
// parent stays disabled.
func TestScopeWithTracer(t *testing.T) {
	parent := New()
	ts := NewTracerShards(2)
	w0 := parent.WithTracer(ts.Shard(0))
	w1 := parent.WithTracer(ts.Shard(1))
	w0.Count("tile_runs_total", 1)
	w1.Count("tile_runs_total", 1)
	w0.Instant("tile", "a", nil)
	w1.Instant("tile", "b", nil)

	if got := parent.Registry().Counter("tile_runs_total").Value(); got != 2 {
		t.Fatalf("shared registry counter = %d, want 2", got)
	}
	if parent.Tracer().Len() != 0 {
		t.Fatalf("parent tracer received worker events")
	}
	if ts.Shard(0).Len() != 1 || ts.Shard(1).Len() != 1 {
		t.Fatalf("worker events missed their shards")
	}
	var nilScope *Scope
	if derived := nilScope.WithTracer(ts.Shard(0)); derived.Enabled() {
		t.Fatal("nil scope must stay disabled")
	}
}

package obs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleSet returns the labels in [0,n) the recorder captures.
func sampleSet(f *FlightRecorder, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if f.Sample(uint64(i) * 0x9e3779b97f4a7c15) {
			out = append(out, i)
		}
	}
	return out
}

func TestFlightSamplingDeterministicAndSeedSensitive(t *testing.T) {
	a := NewFlightRecorder(1, 64, 0.1, 7)
	b := NewFlightRecorder(8, 64, 0.1, 7) // worker count must not matter
	c := NewFlightRecorder(1, 64, 0.1, 8) // seed must
	sa, sb, sc := sampleSet(a, 5000), sampleSet(b, 5000), sampleSet(c, 5000)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("sampled set depends on worker count")
	}
	if reflect.DeepEqual(sa, sc) {
		t.Fatal("different seeds sampled the identical set")
	}
	got := float64(len(sa)) / 5000
	if math.Abs(got-0.1) > 0.03 {
		t.Errorf("empirical rate %.3f far from configured 0.1", got)
	}
	if len(sampleSet(NewFlightRecorder(1, 64, 0, 7), 5000)) != 0 {
		t.Error("rate 0 sampled something")
	}
	if len(sampleSet(NewFlightRecorder(1, 64, 1, 7), 500)) != 500 {
		t.Error("rate 1 did not sample everything")
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	if f.Sample(42) {
		t.Error("nil recorder sampled")
	}
	f.Shard(0).Add(FlightRecord{}) // nil shard must be inert
	f.MergeRound()
	if f.Records() != nil || f.Len() != 0 || f.Sampled() != 0 || f.Evicted() != 0 {
		t.Error("nil recorder not inert")
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteJSONL: %v, %d bytes", err, buf.Len())
	}
}

// TestFlightMergeDeterministicAcrossSharding: the same sampled records
// pushed through different worker shardings must merge to the same ring
// and the same JSONL bytes — the per-worker layout is erased by the
// (round, index) merge.
func TestFlightMergeDeterministicAcrossSharding(t *testing.T) {
	recs := make([]FlightRecord, 40)
	for i := range recs {
		recs[i] = FlightRecord{
			Round: i / 10, Index: i % 10, User: i, Item: i % 3,
			Served: i % 5, Intended: i % 5, LatencyMs: float64(i) * 1.5,
			Attempts: []FlightAttempt{{Server: i % 5, Kind: "edge", Breaker: "closed", LatencyMs: float64(i), OK: true}},
		}
	}
	run := func(workers int) []byte {
		f := NewFlightRecorder(workers, 1000, 1, 1)
		for r := 0; r < 4; r++ {
			for i, rec := range recs {
				if rec.Round != r {
					continue
				}
				f.Shard(i%workers).Add(rec)
			}
			f.MergeRound()
		}
		var buf bytes.Buffer
		if err := f.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, c := run(1), run(3), run(8)
	if !bytes.Equal(a, b) || !bytes.Equal(a, c) {
		t.Fatal("merged flight JSONL depends on worker sharding")
	}
	if len(a) == 0 {
		t.Fatal("no bytes produced")
	}
}

// TestFlightRingEviction: the capacity bound drops the oldest records at
// the merge, keeping the newest in chronological order.
func TestFlightRingEviction(t *testing.T) {
	f := NewFlightRecorder(2, 5, 1, 1)
	for r := 0; r < 4; r++ {
		for i := 0; i < 3; i++ {
			f.Shard(i%2).Add(FlightRecord{Round: r, Index: i})
		}
		f.MergeRound()
	}
	if f.Sampled() != 12 || f.Evicted() != 7 || f.Len() != 5 {
		t.Fatalf("sampled=%d evicted=%d len=%d, want 12/7/5", f.Sampled(), f.Evicted(), f.Len())
	}
	got := f.Records()
	want := []FlightRecord{{Round: 2, Index: 2}, {Round: 3, Index: 0}, {Round: 3, Index: 1}, {Round: 3, Index: 2}}
	if len(got) != 5 {
		t.Fatalf("ring holds %d records", len(got))
	}
	if !reflect.DeepEqual(got[1:], want) {
		t.Fatalf("ring tail %+v, want %+v", got[1:], want)
	}
	if !reflect.DeepEqual(got[0], FlightRecord{Round: 2, Index: 1}) {
		t.Fatalf("ring head %+v", got[0])
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	f := NewFlightRecorder(1, 16, 1, 1)
	f.Shard(0).Add(FlightRecord{
		Round: 3, Index: 7, User: 2, Item: 1, Intended: 4, Served: -1,
		Retries: 2, Failovers: 1, CloudFallback: true, Degraded: true,
		LatencyMs: 120.5, LatencyDeltaMs: 100.25, BackhaulMB: 30,
		Attempts: []FlightAttempt{
			{Server: 4, Kind: "edge", Breaker: "closed", Retries: 2, LatencyMs: 80, BudgetMs: 1920, OK: false},
			{Server: -1, Kind: "cloud", LatencyMs: 40.5, BudgetMs: 1879.5, OK: true},
		},
	})
	f.MergeRound()

	var buf bytes.Buffer
	if err := f.WriteDump(&buf, "slo-burn:availability", 3, 3.0); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteDump(&buf, "breaker-spike", 4, 4.0); err != nil {
		t.Fatal(err)
	}
	recs, headers, err := ReadFlightJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 2 || headers[0].Dump != "slo-burn:availability" || headers[1].Round != 4 {
		t.Fatalf("headers = %+v", headers)
	}
	if len(recs) != 2 { // the same ring dumped twice
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if !reflect.DeepEqual(recs[0], recs[1]) || !reflect.DeepEqual(recs[0], f.Records()[0]) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", recs[0], f.Records()[0])
	}
}

func TestFlightChromeWaterfall(t *testing.T) {
	recs := []FlightRecord{{
		Round: 2, Index: 5, User: 1, Item: 0, Intended: 3, Served: 7,
		LatencyMs: 12,
		Attempts: []FlightAttempt{
			{Server: 3, Kind: "edge", Breaker: "open", LatencyMs: 2, BudgetMs: 1998, OK: false},
			{Server: 7, Kind: "failover", Breaker: "closed", LatencyMs: 10, BudgetMs: 1988, OK: true},
		},
	}}
	var buf bytes.Buffer
	if err := WriteFlightChromeTrace(recs, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"traceEvents"`, `"req u1/k0"`, `"edge s3"`, `"failover s7"`,
		`"breaker":"open"`, `"tid":5`, `"pid":3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %s:\n%s", want, out)
		}
	}
}

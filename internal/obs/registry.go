package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone int64 metric. The zero value is ready to use;
// all methods are safe for concurrent use and nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 metric. The zero value is ready to
// use; all methods are safe for concurrent use and nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reports the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of a log2 histogram: bucket 0
// holds v < 2, bucket b holds v in [2^b, 2^(b+1)), and the last bucket
// absorbs everything beyond 2^62 (including +Inf).
const histBuckets = 63

// Histogram is a log2-bucketed distribution of non-negative float64
// observations. Fixed power-of-two bucket boundaries keep Observe
// allocation-free and branch-cheap (one bits.Len64), which is what lets
// engines histogram per-round quantities without a tuning knob.
type Histogram struct {
	counts  [histBuckets]atomic.Int64
	n       atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// histBucketOf maps an observation to its bucket index.
func histBucketOf(v float64) int {
	if !(v >= 2) { // v < 2, NaN and negatives all land in bucket 0
		return 0
	}
	if v >= math.MaxInt64 {
		return histBuckets - 1
	}
	b := bits.Len64(uint64(v)) - 1 // v in [2^b, 2^(b+1))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// HistBucketUpper reports bucket b's inclusive Prometheus "le" upper
// bound: 2^(b+1) (the final bucket is +Inf).
func HistBucketUpper(b int) float64 {
	if b >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, b+1)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[histBucketOf(v)].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// histBucketLower reports bucket b's inclusive lower bound: 0 for
// bucket 0 (which also absorbs negatives and NaN), 2^b otherwise.
func histBucketLower(b int) float64 {
	if b == 0 {
		return 0
	}
	return math.Ldexp(1, b)
}

// Quantile estimates the p-quantile (p in [0,1]) of the observed
// distribution from the log2 buckets, interpolating linearly within the
// bucket that contains the target rank.
//
// Error bound: the true quantile and the estimate always lie in the same
// bucket [2^b, 2^(b+1)), so the estimate is within one bucket width of
// the truth — a relative error strictly below a factor of 2 for values
// ≥ 2, and an absolute error below 2 for bucket 0 (values in [0,2); the
// final bucket is interpolated over [2^62, 2^63) and clamps the far
// tail). That is the precision the SLO burn-rate surfaces need: which
// power-of-two regime the tail sits in, not its third significant digit.
// With no observations it reports 0; p outside [0,1] is clamped.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	n := h.Count()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(n)
	var cum int64
	buckets := h.Buckets()
	for b, c := range buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := histBucketLower(b)
			hi := math.Ldexp(1, b+1) // last bucket: interpolate over [2^62, 2^63)
			frac := (rank - float64(prev)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	// Unreachable for n > 0; keep the zero-value contract anyway.
	return 0
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets reports the per-bucket counts (index b covers [2^b, 2^(b+1)),
// with bucket 0 additionally holding everything below 2).
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Registry is a named collection of metrics. Get-or-create accessors
// make instrumentation sites self-registering: the first Counter(name)
// call creates the metric, later calls return the same instance, so a
// legacy stats struct and the registry can be fed from one code path
// and never drift. All methods are safe for concurrent use and nil-safe
// (a nil registry returns nil metrics, whose methods are no-ops).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns the map's keys in ascending order; every exporter
// walks metrics through it so dumps are deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns a deterministic flat view of every metric: counters
// as int64, gauges as float64, histograms expanded to _count and _sum
// entries plus _p50/_p99/_p999 Quantile estimates. Used by the expvar
// publication and the tests.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_count"] = h.Count()
		out[name+"_sum"] = h.Sum()
		out[name+"_p50"] = h.Quantile(0.50)
		out[name+"_p99"] = h.Quantile(0.99)
		out[name+"_p999"] = h.Quantile(0.999)
	}
	return out
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format, sorted by name so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		buckets := h.Buckets()
		var cum int64
		for b, c := range buckets {
			cum += c
			if c == 0 && b != histBuckets-1 {
				continue // sparse dump; cumulative counts stay exact
			}
			le := "+Inf"
			if ub := HistBucketUpper(b); !math.IsInf(ub, 1) {
				le = fmt.Sprintf("%g", ub)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestTimelineCSVEscaping is the RFC 4180 regression test: attribute
// values carrying commas, double quotes, and line breaks must survive a
// round trip through encoding/csv, and plain numeric values must stay
// unquoted so the committed timeline artifacts are byte-stable.
func TestTimelineCSVEscaping(t *testing.T) {
	tr := NewTracer()
	tr.Instant("game", "round", map[string]any{
		"round": 0,
		"note":  `deadline exceeded, server "s3" open`,
		"path":  "a\nb",
	})
	tr.Instant("game", "round", map[string]any{
		"round": 1,
		"note":  "plain",
		"path":  "cr\rlf",
	})
	got := tr.TimelineCSV("game", "round", []string{"round", "note", "path"})

	rows, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not re-parse: %v\n%s", err, got)
	}
	want := [][]string{
		{"round", "note", "path"},
		{"0", `deadline exceeded, server "s3" open`, "a\nb"},
		{"1", "plain", "cr\rlf"},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("round trip mangled fields:\n got %q\nwant %q", rows, want)
	}
	if !strings.Contains(got, `"deadline exceeded, server ""s3"" open"`) {
		t.Errorf("embedded quotes not doubled:\n%s", got)
	}
	// Numeric-only output stays quote-free.
	tr2 := NewTracer()
	tr2.Instant("game", "round", map[string]any{"round": 2, "gain": 1.25})
	if got := tr2.TimelineCSV("game", "round", []string{"round", "gain"}); got != "round,gain\n2,1.25\n" {
		t.Errorf("numeric timeline gained quoting: %q", got)
	}
}

// TestChromeTraceShardTid: a merged TracerShards trace carries each
// event's originating shard as the Chrome tid, so Perfetto renders one
// track per tile worker. A plain tracer stays on tid 0.
func TestChromeTraceShardTid(t *testing.T) {
	ts := NewTracerShards(3)
	ts.Shard(0).Instant("tile", "w0", nil)
	ts.Shard(2).Instant("tile", "w2", nil)
	ts.Shard(1).Begin("tile", "w1", nil)
	ts.Shard(1).End("tile", "w1")

	main := NewTracer()
	ts.MergeInto(main)
	var buf bytes.Buffer
	if err := main.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"w0","cat":"tile","ph":"i","ts":0,"pid":1,"tid":0`,
		`"name":"w1","cat":"tile","ph":"B","ts":1,"pid":1,"tid":1`,
		`"name":"w2","cat":"tile","ph":"i","ts":2,"pid":1,"tid":2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, out)
		}
	}
	// The merged shard events keep their Tid on the Event itself too;
	// merge order is (local tick, shard): w0, w1-B, w2, w1-E.
	evs := main.Events()
	if evs[0].Tid != 0 || evs[1].Tid != 1 || evs[2].Tid != 2 || evs[3].Tid != 1 {
		t.Fatalf("merged event tids = %d,%d,%d,%d", evs[0].Tid, evs[1].Tid, evs[2].Tid, evs[3].Tid)
	}
}

// TestTracerShardsConcurrentJSONLByteIdentity hammers the shard merge
// from GOMAXPROCS concurrent emitters and asserts the merged JSONL is
// byte-identical across repeated runs — the determinism contract at the
// serialization layer, under the race detector in CI's -race pass.
func TestTracerShardsConcurrentJSONLByteIdentity(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	run := func() []byte {
		ts := NewTracerShards(workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tr := ts.Shard(w)
				tr.Begin("shard", "tile", map[string]any{"tile": w})
				for r := 0; r < 50; r++ {
					tr.Instant("game", "round", map[string]any{"round": r, "tile": w, "gain": float64(r) * 0.5})
				}
				tr.End("shard", "tile")
			}(w)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := ts.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := run()
	if len(base) == 0 {
		t.Fatal("no bytes produced")
	}
	if lines := bytes.Count(base, []byte("\n")); lines != workers*52 {
		t.Fatalf("merged %d lines, want %d", lines, workers*52)
	}
	for i := 0; i < 5; i++ {
		if got := run(); !bytes.Equal(got, base) {
			t.Fatalf("run %d: merged JSONL bytes diverged under concurrent emit", i)
		}
	}
}

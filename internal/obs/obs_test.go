package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

// TestNilScope exercises every Scope method on the nil receiver: the
// disabled state must be inert, not just non-panicking.
func TestNilScope(t *testing.T) {
	var s *Scope
	if s.Enabled() || s.Tracing() {
		t.Fatal("nil scope reports enabled")
	}
	if s.Registry() != nil || s.Tracer() != nil {
		t.Fatal("nil scope exposes components")
	}
	s.Count("c", 1)
	s.SetGauge("g", 1)
	s.Observe("h", 1)
	s.Begin("cat", "name", map[string]any{"k": 1})
	s.End("cat", "name")
	s.Instant("cat", "name", nil)
}

func TestMetricsOnlyScope(t *testing.T) {
	s := Metrics()
	if !s.Enabled() {
		t.Fatal("metrics scope not enabled")
	}
	if s.Tracing() {
		t.Fatal("metrics scope reports tracing")
	}
	s.Count("c", 2)
	s.Begin("cat", "name", nil) // must be a no-op, not a panic
	if got := s.Registry().Counter("c").Value(); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("Histogram not idempotent")
	}
	r.Counter("x").Add(3)
	r.Gauge("x").Set(1.5)
	r.Histogram("x").Observe(4)
	snap := r.Snapshot()
	if snap["x"] != int64(3) && snap["x"] != 1.5 {
		// "x" is claimed by both the counter and the gauge; Snapshot
		// keeps one of them — the histogram entries must still be
		// distinct.
		t.Fatalf("snapshot[x] = %v", snap["x"])
	}
	if snap["x_count"] != int64(1) || snap["x_sum"] != 4.0 {
		t.Fatalf("histogram snapshot = %v / %v", snap["x_count"], snap["x_sum"])
	}

	var nilReg *Registry
	if nilReg.Counter("c") != nil || nilReg.Gauge("g") != nil || nilReg.Histogram("h") != nil {
		t.Fatal("nil registry returned live metrics")
	}
	nilReg.Counter("c").Inc() // nil metric methods are no-ops
	if err := nilReg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramBuckets pins the log2 bucket layout: bucket 0 holds
// v < 2 (including negatives and NaN), bucket b holds [2^b, 2^(b+1)),
// and the last bucket absorbs the far tail.
func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{0, 1, 1.99, -5, math.NaN()} {
		h.Observe(v)
	}
	h.Observe(2)    // bucket 1: [2, 4)
	h.Observe(3.5)  // bucket 1
	h.Observe(4)    // bucket 2: [4, 8)
	h.Observe(1024) // bucket 10
	h.Observe(math.Inf(1))
	b := h.Buckets()
	if b[0] != 5 || b[1] != 2 || b[2] != 1 || b[10] != 1 || b[histBuckets-1] != 1 {
		t.Fatalf("bucket counts = %v", b)
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d, want 10", h.Count())
	}
	if up := HistBucketUpper(0); up != 2 {
		t.Fatalf("upper(0) = %g, want 2", up)
	}
	if up := HistBucketUpper(10); up != 2048 {
		t.Fatalf("upper(10) = %g, want 2048", up)
	}
	if !math.IsInf(HistBucketUpper(histBuckets-1), 1) {
		t.Fatal("last bucket upper bound must be +Inf")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("load").Set(0.5)
	h := r.Histogram("lat_ms")
	h.Observe(1)
	h.Observe(3)
	h.Observe(300)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 1\n",
		"# TYPE b_total counter\nb_total 2\n",
		"# TYPE load gauge\nload 0.5\n",
		"# TYPE lat_ms histogram\n",
		`lat_ms_bucket{le="2"} 1`,
		`lat_ms_bucket{le="4"} 2`,
		`lat_ms_bucket{le="512"} 3`,
		`lat_ms_bucket{le="+Inf"} 3`,
		"lat_ms_sum 304\nlat_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Error("counters not sorted")
	}

	// The dump itself must be deterministic.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two dumps of the same registry differ")
	}
}

// feedTracer records a fixed little trace; two tracers fed through it
// must serialize byte-identically.
func feedTracer(tr *Tracer) {
	tr.Begin("solve", "phase1", map[string]any{"m": 40})
	tr.Instant("game", "round", map[string]any{"round": 1, "gain": 2.5, "r_avg": 7.25})
	tr.Instant("game", "round", map[string]any{"round": 2, "gain": 0.5})
	tr.End("solve", "phase1")
}

func TestTracerTicksAndJSONL(t *testing.T) {
	tr := NewTracer()
	feedTracer(tr)
	evs := tr.Events()
	if len(evs) != 4 || tr.Len() != 4 {
		t.Fatalf("len = %d/%d, want 4", len(evs), tr.Len())
	}
	for i, ev := range evs {
		if ev.Tick != int64(i) {
			t.Fatalf("event %d has tick %d", i, ev.Tick)
		}
	}
	if evs[0].Ph != PhaseBegin || evs[1].Ph != PhaseInstant || evs[3].Ph != PhaseEnd {
		t.Fatalf("phases = %v %v %v %v", evs[0].Ph, evs[1].Ph, evs[2].Ph, evs[3].Ph)
	}

	var a, b bytes.Buffer
	if err := tr.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	tr2 := NewTracer()
	feedTracer(tr2)
	if err := tr2.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical event sequences serialized differently")
	}
	// Every line must be standalone JSON with the expected keys.
	for _, line := range strings.Split(strings.TrimSpace(a.String()), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	feedTracer(tr)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("traceEvents = %d, unit = %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
	for i, ce := range doc.TraceEvents {
		if ce.Ts != int64(i) || ce.Pid != 1 {
			t.Fatalf("event %d: ts=%d pid=%d", i, ce.Ts, ce.Pid)
		}
		if ce.Ph == PhaseInstant && ce.S != "t" {
			t.Fatalf("instant event %d missing thread scope, s=%q", i, ce.S)
		}
	}
}

func TestTimelineCSV(t *testing.T) {
	tr := NewTracer()
	feedTracer(tr)
	got := tr.TimelineCSV("game", "round", []string{"round", "gain", "r_avg"})
	want := "round,gain,r_avg\n1,2.5,7.25\n2,0.5,\n"
	if got != want {
		t.Fatalf("TimelineCSV = %q, want %q", got, want)
	}
	if got := tr.TimelineCSV("none", "such", []string{"a"}); got != "a\n" {
		t.Fatalf("empty timeline = %q", got)
	}
}

func TestFormatAttr(t *testing.T) {
	for _, tc := range []struct {
		in   any
		want string
	}{
		{3.0, "3"}, {int(7), "7"}, {int64(-2), "-2"},
		{2.5, "2.5"}, {1e17, "1e+17"}, {"s", "s"},
	} {
		if got := formatAttr(tc.in); got != tc.want {
			t.Errorf("formatAttr(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestServe spins the live endpoint up on a loopback port and checks
// all three surfaces respond with the scope's data.
func TestServe(t *testing.T) {
	s := New()
	s.Count("demo_total", 41)
	s.Observe("demo_hist", 3)
	srv, err := Serve("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if m := get("/metrics"); !strings.Contains(m, "demo_total 41") || !strings.Contains(m, "demo_hist_count 1") {
		t.Errorf("/metrics missing registry data:\n%s", m)
	}
	if v := get("/debug/vars"); !strings.Contains(v, "idde_metrics") || !strings.Contains(v, "demo_total") {
		t.Errorf("/debug/vars missing idde_metrics publication")
	}
	if p := get("/debug/pprof/cmdline"); p == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	// A second scope re-publishing under the same expvar key must not
	// panic, and the key must track the latest scope.
	s2 := Metrics()
	s2.Count("second_total", 7)
	srv2, err := Serve("127.0.0.1:0", s2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", srv2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "second_total") {
		t.Error("expvar did not switch to the latest published scope")
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// FlightAttempt is one hop of a sampled request's attempt chain: which
// server was tried (or the cloud), what the breaker said on admission,
// how many in-place retries were burned there, the virtual latency the
// hop added, and the deadline budget left when the hop finished. A
// waterfall of FlightAttempts is the per-request explanation the
// phase-level aggregates cannot give: *where* a deadline budget went.
type FlightAttempt struct {
	// Server is the edge server tried, or -1 for the cloud path.
	Server int `json:"server"`
	// Kind classifies the hop: "edge" (the Eq. 8 primary source),
	// "failover" (the next Eq. 8 hop after an abandoned source),
	// "hedge" (the shadow attempt) or "cloud" (the final fallback).
	Kind string `json:"kind"`
	// Breaker is the breaker state observed at admission ("closed",
	// "open", "half-open"); empty for the cloud, which has no breaker.
	Breaker string `json:"breaker,omitempty"`
	// Retries counts the jittered in-place retries burned at this hop.
	Retries int `json:"retries,omitempty"`
	// LatencyMs is the virtual latency this hop added (attempt time,
	// stalls, retries and backoff included).
	LatencyMs float64 `json:"latency_ms"`
	// BudgetMs is the remaining deadline budget after this hop.
	BudgetMs float64 `json:"budget_ms"`
	// OK reports whether the hop served the request.
	OK bool `json:"ok"`
}

// FlightRecord is one sampled request, end to end: identity, the plan's
// Eq. 8 intent, the resolved outcome, the Eq. 17 degradation pricing,
// and the full attempt chain.
type FlightRecord struct {
	Round int `json:"round"`
	// Index is the request's global index within its round — the same
	// index that labels its rng split, so the sampled set is a pure
	// function of the seed, independent of worker count.
	Index int `json:"index"`
	User  int `json:"user"`
	Item  int `json:"item"`
	// Intended is the plan's Eq. 8 choice (-1 = cloud); Served is where
	// the request actually completed (-1 = cloud).
	Intended int `json:"intended"`
	Served   int `json:"served"`

	Retries   int `json:"retries,omitempty"`
	Failovers int `json:"failovers,omitempty"`
	// Hedged marks that a hedge was raced; HedgeWon that it won.
	Hedged           bool `json:"hedged,omitempty"`
	HedgeWon         bool `json:"hedge_won,omitempty"`
	CloudFallback    bool `json:"cloud_fallback,omitempty"`
	DeadlineExceeded bool `json:"deadline_exceeded,omitempty"`
	Degraded         bool `json:"degraded,omitempty"`

	LatencyMs float64 `json:"latency_ms"`
	// LatencyDeltaMs and BackhaulMB are the request's Eq. 17
	// contribution: measured-minus-intended latency and the unplanned
	// cloud backhaul traffic of the downgrade.
	LatencyDeltaMs float64 `json:"latency_delta_ms,omitempty"`
	BackhaulMB     float64 `json:"backhaul_mb,omitempty"`

	Attempts []FlightAttempt `json:"attempts,omitempty"`
}

// FlightShard is one worker's append-only scratch for the current
// round. Workers own exactly one shard each and never share it, so Add
// is lock-free; the recorder folds and clears every shard at the round
// barrier. The nil shard is inert.
type FlightShard struct {
	recs []FlightRecord
}

// Add appends one sampled record to the shard.
func (s *FlightShard) Add(rec FlightRecord) {
	if s != nil {
		s.recs = append(s.recs, rec)
	}
}

// FlightRecorder is a sampled, bounded flight recorder for a concurrent
// request loop: per-worker scratch shards feeding a single bounded ring
// of the most recent exemplar records.
//
// Determinism contract: Sample is a pure function of (recorder seed,
// request label), so with labels derived from global request indices the
// sampled set is identical for any worker count. Eviction happens only
// at the deterministic (round, index)-ordered merge — never per shard —
// so the retained ring, and therefore every JSONL dump, is byte-stable
// across worker counts and runs for a fixed seed. Sampling never draws
// from the request's rng stream, so outcomes (and OutcomeHash) are
// identical with sampling on or off.
//
// The nil *FlightRecorder is the disabled state: Sample reports false
// and every other method is a no-op, which is what keeps the
// sampling-off request path allocation-free.
type FlightRecorder struct {
	threshold uint64 // Sample admits labels hashing below this in 2^64 space
	seed      uint64
	capacity  int
	shards    []*FlightShard

	mu      sync.Mutex
	ring    []FlightRecord // chronological (round, index), bounded at capacity
	sampled atomic.Int64
	evicted atomic.Int64
}

// NewFlightRecorder builds a recorder with one scratch shard per worker,
// a ring bounded at capacity records (default 256 when <= 0), and a
// deterministic sampling rate in [0,1] derived from seed. rate <= 0
// disables sampling (the recorder stays allocated but captures nothing);
// rate >= 1 captures every request.
func NewFlightRecorder(workers, capacity int, rate float64, seed uint64) *FlightRecorder {
	if workers < 1 {
		workers = 1
	}
	if capacity <= 0 {
		capacity = 256
	}
	f := &FlightRecorder{
		threshold: rateThreshold(rate),
		seed:      seed,
		capacity:  capacity,
		shards:    make([]*FlightShard, workers),
	}
	for i := range f.shards {
		f.shards[i] = &FlightShard{}
	}
	return f
}

// rateThreshold maps a sampling probability to a uint64 comparison
// threshold: a label is sampled iff its hash < threshold.
func rateThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	th := math.Ldexp(rate, 64)
	if th >= math.Ldexp(1, 64) {
		return ^uint64(0)
	}
	return uint64(th)
}

// flightSalt decorrelates the sampling hash from every other consumer of
// the same label space (an arbitrary odd constant).
const flightSalt = 0x9d8f3c1b5a7e2461

// splitmix64 is SplitMix64's finalizer — the same mixer the rng package
// uses to decorrelate adjacent seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sample reports whether the request identified by label is captured.
// It is a pure function of (recorder seed, label): no state is read or
// written and no rng draw is consumed, so same-seed runs capture the
// same exemplar set at any worker count and the decision costs nothing
// when it says no. Nil-safe (false) and allocation-free.
func (f *FlightRecorder) Sample(label uint64) bool {
	if f == nil || f.threshold == 0 {
		return false
	}
	return splitmix64(label^f.seed^flightSalt) < f.threshold
}

// Shard returns worker w's scratch shard (nil when the recorder is
// disabled, which Add tolerates).
func (f *FlightRecorder) Shard(w int) *FlightShard {
	if f == nil {
		return nil
	}
	return f.shards[w]
}

// MergeRound folds every shard's scratch into the bounded ring and
// clears the scratch — the deterministic (round, index) merge, called
// once per round at the barrier (single-threaded, after the workers
// join). Eviction drops the oldest records first, so the ring always
// holds the most recent capacity exemplars in chronological order
// regardless of how requests were chunked across workers.
func (f *FlightRecorder) MergeRound() {
	if f == nil {
		return
	}
	var batch []FlightRecord
	for _, sh := range f.shards {
		batch = append(batch, sh.recs...)
		sh.recs = sh.recs[:0]
	}
	if len(batch) == 0 {
		return
	}
	sort.SliceStable(batch, func(a, b int) bool {
		if batch[a].Round != batch[b].Round {
			return batch[a].Round < batch[b].Round
		}
		return batch[a].Index < batch[b].Index
	})
	f.sampled.Add(int64(len(batch)))
	f.mu.Lock()
	f.ring = append(f.ring, batch...)
	if over := len(f.ring) - f.capacity; over > 0 {
		f.evicted.Add(int64(over))
		f.ring = append(f.ring[:0], f.ring[over:]...)
	}
	f.mu.Unlock()
}

// Records returns a copy of the retained ring in chronological order.
func (f *FlightRecorder) Records() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, len(f.ring))
	copy(out, f.ring)
	return out
}

// Len reports the number of retained records.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// Sampled reports how many records were ever merged into the recorder;
// Evicted how many the capacity bound dropped again.
func (f *FlightRecorder) Sampled() int64 {
	if f == nil {
		return 0
	}
	return f.sampled.Load()
}

// Evicted reports the number of records dropped by the capacity bound.
func (f *FlightRecorder) Evicted() int64 {
	if f == nil {
		return 0
	}
	return f.evicted.Load()
}

// WriteJSONL writes the retained ring as JSONL, one record per line.
// For a fixed seed the bytes are identical across runs and worker
// counts (see the determinism contract above).
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	for _, rec := range f.Records() {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// FlightDumpHeader is the metadata line preceding each triggered dump in
// a flight JSONL stream: why the dump fired, when, and how many records
// follow.
type FlightDumpHeader struct {
	Dump    string  `json:"dump"` // trigger reason, e.g. "slo-burn:availability"
	Round   int     `json:"round"`
	NowS    float64 `json:"now_s"`
	Records int     `json:"records"`
}

// WriteDump writes one triggered dump: a FlightDumpHeader line followed
// by the retained ring as JSONL.
func (f *FlightRecorder) WriteDump(w io.Writer, reason string, round int, nowS float64) error {
	recs := f.Records()
	h := FlightDumpHeader{Dump: reason, Round: round, NowS: nowS, Records: len(recs)}
	b, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return err
	}
	for _, rec := range recs {
		rb, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(rb, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadFlightJSONL parses a flight JSONL stream — bare records, or one or
// more WriteDump sections — returning the records and any dump headers
// in stream order.
func ReadFlightJSONL(r io.Reader) ([]FlightRecord, []FlightDumpHeader, error) {
	var (
		recs    []FlightRecord
		headers []FlightDumpHeader
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Dump *string `json:"dump"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, nil, fmt.Errorf("obs: flight JSONL line %d: %w", line, err)
		}
		if probe.Dump != nil {
			var h FlightDumpHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, nil, fmt.Errorf("obs: flight dump header line %d: %w", line, err)
			}
			headers = append(headers, h)
			continue
		}
		var rec FlightRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, nil, fmt.Errorf("obs: flight record line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return recs, headers, nil
}

// WriteFlightChromeTrace renders flight records as a Chrome trace_event
// exemplar waterfall: one process per round, one thread track per
// sampled request, and one span per attempt laid out at the request's
// cumulative virtual latency (1 trace µs per virtual ms, so Perfetto's
// ruler reads milliseconds directly). The whole request is wrapped in an
// enclosing span carrying the outcome args.
func WriteFlightChromeTrace(recs []FlightRecord, w io.Writer) error {
	const scale = 1000 // virtual ms -> trace_event µs ticks
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ms"}
	add := func(ce chromeEvent) { out.TraceEvents = append(out.TraceEvents, ce) }
	for _, rec := range recs {
		pid := rec.Round + 1 // pid 0 renders poorly in some viewers
		tid := rec.Index
		name := fmt.Sprintf("req u%d/k%d", rec.User, rec.Item)
		add(chromeEvent{
			Name: name, Cat: "flight", Ph: PhaseBegin, Ts: 0, Pid: pid, Tid: tid,
			Args: map[string]any{
				"round": rec.Round, "index": rec.Index,
				"intended": rec.Intended, "served": rec.Served,
				"latency_ms": rec.LatencyMs, "latency_delta_ms": rec.LatencyDeltaMs,
				"backhaul_mb": rec.BackhaulMB, "degraded": rec.Degraded,
				"deadline_exceeded": rec.DeadlineExceeded, "hedge_won": rec.HedgeWon,
			},
		})
		t := int64(0)
		for _, at := range rec.Attempts {
			dur := int64(at.LatencyMs * scale)
			label := fmt.Sprintf("%s s%d", at.Kind, at.Server)
			if at.Server < 0 {
				label = at.Kind
			}
			add(chromeEvent{
				Name: label, Cat: "attempt", Ph: PhaseBegin, Ts: t, Pid: pid, Tid: tid,
				Args: map[string]any{
					"breaker": at.Breaker, "retries": at.Retries,
					"budget_ms": at.BudgetMs, "ok": at.OK,
				},
			})
			add(chromeEvent{Name: label, Cat: "attempt", Ph: PhaseEnd, Ts: t + dur, Pid: pid, Tid: tid})
			t += dur
		}
		end := int64(rec.LatencyMs * scale)
		if end < t {
			end = t // a winning hedge can finish before the primary's cumulative time
		}
		add(chromeEvent{Name: name, Cat: "flight", Ph: PhaseEnd, Ts: end, Pid: pid, Tid: tid})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

package obs

import (
	"math"
	"testing"

	"idde/internal/stats"
)

// withinBucketBound asserts the log2-bucket error contract: estimate and
// truth must land in the same bucket, i.e. within a factor of 2 for
// values >= 2 and within the [0,2) bucket absolutely below that.
func withinBucketBound(t *testing.T, name string, got, want float64) {
	t.Helper()
	if want < 2 {
		if got < 0 || got >= 2 {
			t.Errorf("%s: estimate %g outside bucket [0,2) holding true value %g", name, got, want)
		}
		return
	}
	if got < want/2 || got > want*2 {
		t.Errorf("%s: estimate %g violates factor-2 bound around %g", name, got, want)
	}
	// The estimate interpolates over [lower, upper] of the true value's
	// bucket, inclusive of the upper edge, so it may land at the first
	// value of the next bucket — adjacent is the tightest stable bound.
	if d := histBucketOf(got) - histBucketOf(want); d < -1 || d > 1 {
		t.Errorf("%s: estimate %g (bucket %d) not adjacent to true value's bucket %d (%g)",
			name, got, histBucketOf(got), histBucketOf(want), want)
	}
}

// TestQuantileAgainstPercentile pins p50/p99/p999 against the exact
// internal/stats.Percentile on known distributions, checking the
// documented log2-bucket error bound.
func TestQuantileAgainstPercentile(t *testing.T) {
	dists := map[string]func(i int) float64{
		// Uniform ramp over [0, 1000).
		"uniform": func(i int) float64 { return float64(i) / 10 },
		// Long-tailed: mostly small with a heavy far tail, the shape of
		// a retry-inflated latency distribution.
		"tail": func(i int) float64 {
			v := 3 + 0.01*float64(i%97)
			switch {
			case i%100 == 0:
				return v * 300
			case i%10 == 0:
				return v * 20
			default:
				return v
			}
		},
		// Two-point mass: exercises interpolation inside one bucket.
		"bimodal": func(i int) float64 {
			if i%4 == 0 {
				return 900
			}
			return 5
		},
	}
	for name, gen := range dists {
		h := &Histogram{}
		var xs []float64
		for i := 0; i < 10000; i++ {
			v := gen(i)
			h.Observe(v)
			xs = append(xs, v)
		}
		for _, p := range []float64{0.50, 0.99, 0.999} {
			got := h.Quantile(p)
			want := stats.Percentile(xs, p*100)
			withinBucketBound(t, name, got, want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
	h := &Histogram{}
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(5) // single observation in bucket 2: [4,8)
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		q := h.Quantile(p)
		if q < 4 || q > 8 {
			t.Errorf("Quantile(%g) = %g outside the only occupied bucket [4,8)", p, q)
		}
	}
	// The far tail must clamp into the final bucket, not overflow.
	h2 := &Histogram{}
	h2.Observe(math.Inf(1))
	if q := h2.Quantile(0.999); math.IsInf(q, 1) || q < math.Ldexp(1, 62) || q > math.Ldexp(1, 63) {
		t.Errorf("far-tail quantile %g outside [2^62, 2^63]", q)
	}
}

// TestSnapshotQuantiles: Registry.Snapshot exports the three standard
// quantile estimates next to _count and _sum.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms")
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i))
	}
	snap := r.Snapshot()
	for _, key := range []string{"lat_ms_p50", "lat_ms_p99", "lat_ms_p999"} {
		v, ok := snap[key].(float64)
		if !ok {
			t.Fatalf("snapshot missing %s: %v", key, snap[key])
		}
		if v <= 0 {
			t.Errorf("%s = %g, want > 0", key, v)
		}
	}
	p50 := snap["lat_ms_p50"].(float64)
	p999 := snap["lat_ms_p999"].(float64)
	if p999 <= p50 {
		t.Errorf("p999 %g <= p50 %g", p999, p50)
	}
}

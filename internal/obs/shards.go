package obs

import (
	"io"
	"sort"
)

// TracerShards is a family of per-worker tracers with a deterministic
// merge. Concurrent workers (the sharded solver's tile workers, traced
// serving soaks) each own one shard — their emits never contend on a
// shared mutex and never interleave ticks nondeterministically — and
// the merged view orders events by (shard-local tick, shard index),
// which is a pure function of what each worker emitted, independent of
// scheduling. With one shard the merge is the identity: the merged
// JSONL is byte-identical to the shard's own WriteJSONL output.
type TracerShards struct {
	shards []*Tracer
}

// NewTracerShards returns n independent tracers (n < 1 is treated as 1).
// Shard i records its events with Tid i, so a merged Chrome trace
// renders one track per worker (shard 0 matches the plain tracer's
// default track, keeping one-shard merges byte-identical).
func NewTracerShards(n int) *TracerShards {
	if n < 1 {
		n = 1
	}
	ts := &TracerShards{shards: make([]*Tracer, n)}
	for i := range ts.shards {
		ts.shards[i] = NewTracer()
		ts.shards[i].tid = i
	}
	return ts
}

// Len reports the shard count.
func (ts *TracerShards) Len() int { return len(ts.shards) }

// Shard returns shard i's tracer. Each worker must emit into its own
// shard only; the shard tracer itself is an ordinary Tracer.
func (ts *TracerShards) Shard(i int) *Tracer { return ts.shards[i] }

// Merged returns the union of all shard events in the canonical merge
// order — ascending (shard-local tick, shard index) — re-ticked from 0
// so the result is indistinguishable from a single tracer that recorded
// the same events. Within a shard the original order is preserved;
// across shards events advance in lockstep by local tick, so the merge
// depends only on the per-shard sequences, never on wall-clock
// interleaving.
func (ts *TracerShards) Merged() []Event {
	type tagged struct {
		ev    Event
		shard int
	}
	var all []tagged
	for s, tr := range ts.shards {
		for _, ev := range tr.Events() {
			all = append(all, tagged{ev: ev, shard: s})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].ev.Tick != all[b].ev.Tick {
			return all[a].ev.Tick < all[b].ev.Tick
		}
		return all[a].shard < all[b].shard
	})
	out := make([]Event, len(all))
	for i, t := range all {
		out[i] = t.ev
		out[i].Tick = int64(i)
	}
	return out
}

// WriteJSONL writes the merged events as JSONL, one object per line —
// the same serialization a single Tracer produces, so a one-shard merge
// is byte-identical to Tracer.WriteJSONL.
func (ts *TracerShards) WriteJSONL(w io.Writer) error {
	for _, ev := range ts.Merged() {
		if err := writeJSONLine(w, ev); err != nil {
			return err
		}
	}
	return nil
}

// MergeInto re-emits the merged events into dst, which assigns them
// fresh consecutive ticks after whatever dst already holds. Each event
// keeps its originating shard's Tid, so the merged Chrome trace still
// renders per-worker tracks. The sharded solver uses it to fold
// tile-worker events back into the run's main tracer once the workers
// have joined.
func (ts *TracerShards) MergeInto(dst *Tracer) {
	if dst == nil {
		return
	}
	for _, ev := range ts.Merged() {
		dst.record(ev)
	}
}

// WithTracer returns a Scope that shares s's metrics registry but
// records events into tr (which may be one shard of a TracerShards).
// Counters recorded through the derived scope land in the same registry
// — they are atomic, so concurrent workers may share it — while trace
// events stay on the worker's own shard. A nil receiver stays nil
// (disabled scopes have no registry to share), and a nil tr yields a
// metrics-only scope.
func (s *Scope) WithTracer(tr *Tracer) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, tr: tr}
}

package obs

import (
	"bytes"
	"errors"
	"testing"
)

// record plays the same deterministic event sequence into a tracer.
func record(tr *Tracer) {
	for i := 0; i < 50; i++ {
		tr.Begin("game", "round", map[string]any{"round": i})
		tr.Instant("game", "update", map[string]any{"round": i, "gain": float64(i) * 0.5})
		tr.End("game", "round")
	}
}

// TestStreamToByteIdentity is the streaming contract: the bytes spilled
// live must equal a post-run WriteJSONL of the same sequence.
func TestStreamToByteIdentity(t *testing.T) {
	buffered := NewTracer()
	record(buffered)
	var want bytes.Buffer
	if err := buffered.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	streamed := NewTracer()
	var got bytes.Buffer
	if err := streamed.StreamTo(&got); err != nil {
		t.Fatal(err)
	}
	record(streamed)
	if err := streamed.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("streamed JSONL differs from buffered WriteJSONL (%d vs %d bytes)", got.Len(), want.Len())
	}
	if streamed.Len() != buffered.Len() {
		t.Fatalf("streamed Len = %d, buffered Len = %d", streamed.Len(), buffered.Len())
	}
	if n := len(streamed.Events()); n != 0 {
		t.Fatalf("streaming tracer retained %d events in memory", n)
	}
}

// TestStreamToMidwayFlush attaches the sink after some events are
// already buffered: the flush plus the live tail must still be
// byte-identical to the fully buffered run.
func TestStreamToMidwayFlush(t *testing.T) {
	buffered := NewTracer()
	record(buffered)
	var want bytes.Buffer
	if err := buffered.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	tr := NewTracer()
	for i := 0; i < 25; i++ {
		tr.Begin("game", "round", map[string]any{"round": i})
		tr.Instant("game", "update", map[string]any{"round": i, "gain": float64(i) * 0.5})
		tr.End("game", "round")
	}
	var got bytes.Buffer
	if err := tr.StreamTo(&got); err != nil {
		t.Fatal(err)
	}
	for i := 25; i < 50; i++ {
		tr.Begin("game", "round", map[string]any{"round": i})
		tr.Instant("game", "update", map[string]any{"round": i, "gain": float64(i) * 0.5})
		tr.End("game", "round")
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("midway-attached stream differs from buffered run")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 2 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestStreamToDeferredError(t *testing.T) {
	tr := NewTracer()
	if err := tr.StreamTo(&failWriter{}); err != nil {
		t.Fatal(err)
	}
	record(tr)
	if tr.Err() == nil {
		t.Fatal("write failure not surfaced through Err")
	}
	if tr.Len() != 150 {
		t.Fatalf("Len = %d after failed stream, want 150 (ticks keep advancing)", tr.Len())
	}
}

package experiment

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"idde/internal/baseline"
	"idde/internal/model"
)

// gateApproach wraps a real approach but signals when the worker pool
// starts its first solve and slows every solve slightly, giving the
// test a deterministic window to cancel mid-set.
type gateApproach struct {
	inner   baseline.Approach
	started chan struct{}
	once    sync.Once
}

func (a *gateApproach) Name() string { return a.inner.Name() }

func (a *gateApproach) Solve(in *model.Instance, seed uint64) model.Strategy {
	a.once.Do(func() { close(a.started) })
	time.Sleep(time.Millisecond)
	return a.inner.Solve(in, seed)
}

// ctxTestSet is a tiny single-x set so each repetition is cheap and the
// partial aggregation is easy to reason about.
func ctxTestSet() Set {
	return Set{ID: 1, Vary: "N", Values: []float64{8}, Base: Params{M: 40, K: 3, Density: 1.0}}
}

// TestRunSetCtxCancelPartialReport cancels a long set mid-flight and
// checks the three contract points: the context error is surfaced, the
// result is a partial-but-consistent aggregation (fewer than Reps
// observations, identical counts across metrics), and every pool
// goroutine exits (counter check — goleak without the dependency).
func TestRunSetCtxCancelPartialReport(t *testing.T) {
	ap := &gateApproach{inner: baseline.NewCDP(), started: make(chan struct{})}
	cfg := Config{Reps: 400, Seed: 7, Approaches: []baseline.Approach{ap}, Workers: 4}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-ap.started
		cancel()
	}()
	sr, err := RunSetCtx(ctx, ctxTestSet(), cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sr == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	m, ok := sr.Points[0].ByApproach[ap.Name()]
	if !ok {
		t.Fatalf("partial result missing approach %q", ap.Name())
	}
	if m.Rate.N >= cfg.Reps {
		t.Errorf("partial result aggregated %d reps, want < %d", m.Rate.N, cfg.Reps)
	}
	if m.Rate.N != m.LatencyMs.N || m.Rate.N != m.TimeSec.N {
		t.Errorf("inconsistent partial counts: rate=%d latency=%d time=%d",
			m.Rate.N, m.LatencyMs.N, m.TimeSec.N)
	}

	// Pool teardown: the goroutine count returns to (about) the pre-call
	// level. Allow slack for runtime background goroutines, and retry
	// because exits are asynchronous after RunSetCtx returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunSetCtxPreCancelled must not run a single repetition.
func TestRunSetCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ap := &gateApproach{inner: baseline.NewCDP(), started: make(chan struct{})}
	cfg := Config{Reps: 10, Seed: 7, Approaches: []baseline.Approach{ap}, Workers: 2}
	sr, err := RunSetCtx(ctx, ctxTestSet(), cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sr == nil {
		t.Fatal("no partial result")
	}
	if n := sr.Points[0].ByApproach[ap.Name()].Rate.N; n != 0 {
		t.Errorf("pre-cancelled run still aggregated %d reps", n)
	}
	select {
	case <-ap.started:
		t.Error("pre-cancelled run invoked an approach solve")
	default:
	}
}

// TestRunSetCtxBackgroundEqualsRunSet pins the refactor: the plain
// RunSet path is exactly RunSetCtx(Background) and stays deterministic.
// One worker keeps the accumulation order fixed so the summaries
// (including wall-clock-free metrics) compare exactly.
func TestRunSetCtxBackgroundEqualsRunSet(t *testing.T) {
	cfg := Config{Reps: 3, Seed: 11, Approaches: []baseline.Approach{baseline.NewCDP()}, Workers: 1}
	a, err := RunSet(ctxTestSet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSetCtx(context.Background(), ctxTestSet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ma := a.Points[0].ByApproach["CDP"]
	mb := b.Points[0].ByApproach["CDP"]
	if ma.Rate != mb.Rate || ma.LatencyMs != mb.LatencyMs {
		t.Errorf("RunSet and RunSetCtx(Background) disagree: %+v vs %+v", ma, mb)
	}
}

package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"idde/internal/baseline"
	"idde/internal/model"
	"idde/internal/obs"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/stats"
	"idde/internal/topology"
	"idde/internal/workload"
)

// Config controls a harness run.
type Config struct {
	// Reps is the number of randomized repetitions per x value (the
	// paper uses 50; see EXPERIMENTS.md for the budget used here).
	Reps int
	// Seed roots all instance randomness.
	Seed uint64
	// Approaches to compare; defaults to baseline.All().
	Approaches []baseline.Approach
	// Workers bounds parallel replicas (default GOMAXPROCS).
	Workers int
	// Obs receives harness-level telemetry: a span per set and
	// progress counters (instances built, approach solves). Reps run
	// concurrently, so only order-free counters are recorded from the
	// workers — trace events come from the serialized section alone,
	// keeping traces deterministic. nil disables all of it.
	Obs *obs.Scope
}

// DefaultConfig mirrors §4.3 (50 repetitions, all five approaches).
func DefaultConfig() Config {
	return Config{Reps: 50, Seed: 2022, Approaches: baseline.All()}
}

// Metrics aggregates one approach at one x value across repetitions.
type Metrics struct {
	// Rate is R_avg in MBps (Figures 3a–6a).
	Rate stats.Summary
	// LatencyMs is L_avg in milliseconds (Figures 3b–6b).
	LatencyMs stats.Summary
	// TimeSec is the strategy formulation time in seconds (Figure 7).
	TimeSec stats.Summary
}

// Point is one x value of one figure.
type Point struct {
	X      float64
	Params Params
	// ByApproach maps approach name to its aggregated metrics.
	ByApproach map[string]Metrics
}

// SetResult is the data behind one figure (3, 4, 5 or 6).
type SetResult struct {
	Set    Set
	Config Config
	Points []Point
	// Elapsed is the harness wall-clock for the whole set.
	Elapsed time.Duration
}

// BuildInstance constructs the randomized IDDE instance for one
// repetition, using the §4.2 defaults.
func BuildInstance(p Params, seed uint64) (*model.Instance, error) {
	s := rng.New(seed)
	cfg := topology.DefaultGen(p.N, p.M, p.Density)
	if p.RegionScale > 0 && p.RegionScale != 1 {
		cfg.Region.MaxX = cfg.Region.MinX + cfg.Region.Width()*p.RegionScale
		cfg.Region.MaxY = cfg.Region.MinY + cfg.Region.Height()*p.RegionScale
	}
	top, err := topology.Generate(cfg, s.Split("topology"))
	if err != nil {
		return nil, err
	}
	wl, err := workload.Generate(workload.DefaultGen(p.K), p.N, p.M, s.Split("workload"))
	if err != nil {
		return nil, err
	}
	return model.New(top, wl, radio.Default())
}

// repSeed derives the instance seed for (set, x-index, rep).
func repSeed(root uint64, setID, xi, rep int) uint64 {
	return rng.New(root).SplitN("set", setID).SplitN("x", xi).SplitN("rep", rep).Seed()
}

// measurement is one (approach, rep) observation.
type measurement struct {
	approach  string
	rate      float64 // MBps
	latencyMs float64
	timeSec   float64
}

// RunSet executes one Table 2 set and aggregates the three metrics.
func RunSet(set Set, cfg Config) (*SetResult, error) {
	return RunSetCtx(context.Background(), set, cfg)
}

// RunSetCtx is RunSet under a context. Cancellation stops the worker
// pool cleanly — no task is abandoned mid-send and every goroutine
// exits before the call returns — and yields a partial SetResult
// aggregating the repetitions that finished, alongside ctx.Err().
// Summaries in a partial result cover fewer than cfg.Reps repetitions.
func RunSetCtx(ctx context.Context, set Set, cfg Config) (*SetResult, error) {
	if cfg.Reps <= 0 {
		return nil, fmt.Errorf("experiment: Reps must be positive")
	}
	if len(cfg.Approaches) == 0 {
		cfg.Approaches = baseline.All()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	if cfg.Obs.Tracing() {
		cfg.Obs.Begin("experiment", "set", map[string]any{
			"id": set.ID, "vary": set.Vary, "xs": len(set.Values), "reps": cfg.Reps,
		})
		defer cfg.Obs.End("experiment", "set")
	}

	type task struct{ xi, rep int }
	type taskResult struct {
		xi  int
		ms  []measurement
		err error
	}
	tasks := make(chan task)
	results := make(chan taskResult)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				// Drain without solving once cancelled: the producer
				// stops feeding, but tasks already queued must still be
				// consumed so nobody blocks on a send.
				if ctx.Err() != nil {
					continue
				}
				ms, err := runRep(set, cfg, tk.xi, tk.rep)
				results <- taskResult{xi: tk.xi, ms: ms, err: err}
			}
		}()
	}
	go func() {
		defer close(tasks)
		for xi := range set.Values {
			for rep := 0; rep < cfg.Reps; rep++ {
				select {
				case tasks <- task{xi: xi, rep: rep}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Aggregate with online accumulators per (x, approach).
	type accs struct{ rate, lat, tim stats.Acc }
	agg := make([]map[string]*accs, len(set.Values))
	for xi := range agg {
		agg[xi] = map[string]*accs{}
		for _, ap := range cfg.Approaches {
			agg[xi][ap.Name()] = &accs{}
		}
	}
	var firstErr error
	for tr := range results {
		if tr.err != nil {
			if firstErr == nil {
				firstErr = tr.err
			}
			continue
		}
		for _, m := range tr.ms {
			a := agg[tr.xi][m.approach]
			a.rate.Add(m.rate)
			a.lat.Add(m.latencyMs)
			a.tim.Add(m.timeSec)
		}
	}
	// results is closed, so every worker has exited and the producer is
	// gone: nothing outlives this call even when cancelled mid-set.
	if firstErr == nil {
		firstErr = ctx.Err()
	}

	sr := &SetResult{Set: set, Config: cfg, Points: make([]Point, len(set.Values))}
	for xi, x := range set.Values {
		pt := Point{X: x, Params: set.ParamsAt(x), ByApproach: map[string]Metrics{}}
		for name, a := range agg[xi] {
			pt.ByApproach[name] = Metrics{
				Rate:      a.rate.Summary(),
				LatencyMs: a.lat.Summary(),
				TimeSec:   a.tim.Summary(),
			}
		}
		sr.Points[xi] = pt
	}
	sr.Elapsed = time.Since(start)
	if firstErr != nil {
		if ctx.Err() != nil {
			// Partial but internally consistent: return the aggregation
			// of everything that finished, flagged by the context error.
			return sr, ctx.Err()
		}
		return nil, firstErr
	}
	return sr, nil
}

// runRep builds one instance and runs every approach on it.
func runRep(set Set, cfg Config, xi, rep int) ([]measurement, error) {
	p := set.ParamsAt(set.Values[xi])
	seed := repSeed(cfg.Seed, set.ID, xi, rep)
	in, err := BuildInstance(p, seed)
	if err != nil {
		return nil, fmt.Errorf("set #%d x=%v rep %d: %w", set.ID, set.Values[xi], rep, err)
	}
	cfg.Obs.Count("experiment_instances_total", 1)
	ms := make([]measurement, 0, len(cfg.Approaches))
	for _, ap := range cfg.Approaches {
		t0 := time.Now()
		st := ap.Solve(in, seed)
		elapsed := time.Since(t0)
		cfg.Obs.Count("experiment_solves_total", 1)
		if err := in.Check(st); err != nil {
			return nil, fmt.Errorf("%s produced an invalid strategy: %w", ap.Name(), err)
		}
		rate, lat := in.Evaluate(st)
		ms = append(ms, measurement{
			approach:  ap.Name(),
			rate:      float64(rate),
			latencyMs: lat.Millis(),
			timeSec:   elapsed.Seconds(),
		})
	}
	return ms, nil
}

// RunAll executes every Table 2 set.
func RunAll(cfg Config) ([]*SetResult, error) {
	return RunAllCtx(context.Background(), cfg)
}

// RunAllCtx is RunAll under a context. On cancellation it returns the
// sets completed so far — the cancelled set included, partially
// aggregated — together with ctx.Err().
func RunAllCtx(ctx context.Context, cfg Config) ([]*SetResult, error) {
	var out []*SetResult
	for _, set := range Sets() {
		sr, err := RunSetCtx(ctx, set, cfg)
		if err != nil {
			if ctx.Err() != nil && sr != nil {
				out = append(out, sr)
				return out, ctx.Err()
			}
			return nil, err
		}
		out = append(out, sr)
	}
	return out, nil
}

package experiment

import (
	"fmt"
	"sort"
	"strings"

	"idde/internal/cloudlat"
)

// Metric selects which figure panel to format.
type Metric int

const (
	// RateMetric is R_avg in MBps (panel (a) of Figures 3–6).
	RateMetric Metric = iota
	// LatencyMetric is L_avg in ms (panel (b) of Figures 3–6).
	LatencyMetric
	// TimeMetric is the computation time in seconds (Figure 7).
	TimeMetric
)

func (m Metric) String() string {
	switch m {
	case RateMetric:
		return "R_avg (MBps)"
	case LatencyMetric:
		return "L_avg (ms)"
	case TimeMetric:
		return "time (s)"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

func (m Metric) value(mm Metrics) float64 {
	switch m {
	case RateMetric:
		return mm.Rate.Mean
	case LatencyMetric:
		return mm.LatencyMs.Mean
	case TimeMetric:
		return mm.TimeSec.Mean
	default:
		panic(fmt.Sprintf("experiment: unknown metric %d", int(m)))
	}
}

// ApproachOrder is the paper's legend order.
var ApproachOrder = []string{"IDDE-IP", "IDDE-G", "SAA", "CDP", "DUP-G"}

// Approaches lists the approach names present in the result, in legend
// order, with unknown names appended alphabetically.
func (sr *SetResult) Approaches() []string {
	present := map[string]bool{}
	for _, pt := range sr.Points {
		for name := range pt.ByApproach {
			present[name] = true
		}
	}
	var out []string
	for _, name := range ApproachOrder {
		if present[name] {
			out = append(out, name)
			delete(present, name)
		}
	}
	var rest []string
	for name := range present {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// MarkdownTable renders one figure panel as a GitHub-flavored table:
// rows are x values, columns are approaches.
func (sr *SetResult) MarkdownTable(m Metric) string {
	aps := sr.Approaches()
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s (Set #%d, %d reps)\n\n", m, sr.Set.Vary, sr.Set.ID, sr.Config.Reps)
	fmt.Fprintf(&b, "| %s |", sr.Set.Vary)
	for _, ap := range aps {
		fmt.Fprintf(&b, " %s |", ap)
	}
	b.WriteString("\n|---|")
	for range aps {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, pt := range sr.Points {
		fmt.Fprintf(&b, "| %g |", pt.X)
		for _, ap := range aps {
			fmt.Fprintf(&b, " %.2f |", m.value(pt.ByApproach[ap]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MarkdownTableCI renders one figure panel with 95% confidence
// half-widths (mean ±ci), making run-to-run variability visible.
func (sr *SetResult) MarkdownTableCI(m Metric) string {
	aps := sr.Approaches()
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s (Set #%d, %d reps, mean ±95%% CI)\n\n", m, sr.Set.Vary, sr.Set.ID, sr.Config.Reps)
	fmt.Fprintf(&b, "| %s |", sr.Set.Vary)
	for _, ap := range aps {
		fmt.Fprintf(&b, " %s |", ap)
	}
	b.WriteString("\n|---|")
	for range aps {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	ci := func(mm Metrics) float64 {
		switch m {
		case RateMetric:
			return mm.Rate.CI95
		case LatencyMetric:
			return mm.LatencyMs.CI95
		default:
			return mm.TimeSec.CI95
		}
	}
	for _, pt := range sr.Points {
		fmt.Fprintf(&b, "| %g |", pt.X)
		for _, ap := range aps {
			mm := pt.ByApproach[ap]
			fmt.Fprintf(&b, " %.2f ±%.2f |", m.value(mm), ci(mm))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders one figure panel as comma-separated series with a header,
// ready for plotting.
func (sr *SetResult) CSV(m Metric) string {
	aps := sr.Approaches()
	var b strings.Builder
	fmt.Fprintf(&b, "%s", sr.Set.Vary)
	for _, ap := range aps {
		fmt.Fprintf(&b, ",%s", ap)
	}
	b.WriteString("\n")
	for _, pt := range sr.Points {
		fmt.Fprintf(&b, "%g", pt.X)
		for _, ap := range aps {
			fmt.Fprintf(&b, ",%.6g", m.value(pt.ByApproach[ap]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SeriesFor extracts one figure panel as plottable series: the x values
// and, per approach (legend order), the metric means.
func (sr *SetResult) SeriesFor(m Metric) (xs []float64, labels []string, ys [][]float64) {
	labels = sr.Approaches()
	xs = make([]float64, len(sr.Points))
	ys = make([][]float64, len(labels))
	for li := range labels {
		ys[li] = make([]float64, len(sr.Points))
	}
	for pi, pt := range sr.Points {
		xs[pi] = pt.X
		for li, name := range labels {
			ys[li][pi] = m.value(pt.ByApproach[name])
		}
	}
	return xs, labels, ys
}

// Advantage reports IDDE-G's mean relative advantage over the named
// approach across the set, in the orientation the paper quotes (§4.5.1):
// rate advantage = (ours−theirs)/theirs, latency advantage =
// (theirs−ours)/theirs; both averaged over x values.
func (sr *SetResult) Advantage(other string, m Metric) float64 {
	total, n := 0.0, 0
	for _, pt := range sr.Points {
		ours, ok1 := pt.ByApproach["IDDE-G"]
		theirs, ok2 := pt.ByApproach[other]
		if !ok1 || !ok2 {
			continue
		}
		ov, tv := m.value(ours), m.value(theirs)
		if tv == 0 {
			continue
		}
		if m == RateMetric {
			total += (ov - tv) / tv
		} else {
			total += (tv - ov) / tv
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// TimingMarkdown renders Figure 7: mean computation time per approach
// for each set.
func TimingMarkdown(srs []*SetResult) string {
	var b strings.Builder
	b.WriteString("Computation time (s) per approach (Figure 7)\n\n| Set |")
	if len(srs) == 0 {
		return b.String()
	}
	aps := srs[0].Approaches()
	for _, ap := range aps {
		fmt.Fprintf(&b, " %s |", ap)
	}
	b.WriteString("\n|---|")
	for range aps {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, sr := range srs {
		fmt.Fprintf(&b, "| #%d |", sr.Set.ID)
		for _, ap := range aps {
			var sum float64
			for _, pt := range sr.Points {
				sum += pt.ByApproach[ap].TimeSec.Mean
			}
			fmt.Fprintf(&b, " %.4f |", sum/float64(len(sr.Points)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig1Markdown renders the Figure 1 latency-probe data.
func Fig1Markdown(series []cloudlat.Series) string {
	var b strings.Builder
	b.WriteString("End-to-end network latency (Figure 1), hourly × 1 week\n\n")
	b.WriteString("| Setting | Kind | Mean (ms) | Min (ms) | Max (ms) |\n|---|---|---|---|---|\n")
	for _, s := range series {
		fmt.Fprintf(&b, "| %s | %s | %.1f | %.1f | %.1f |\n",
			s.Target.Name, s.Target.Kind, s.Mean.Millis(), s.Min.Millis(), s.Max.Millis())
	}
	return b.String()
}

// Table2Markdown renders the parameter settings table.
func Table2Markdown() string {
	var b strings.Builder
	b.WriteString("Parameter settings (Table 2)\n\n| Set | N | M | K | density |\n|---|---|---|---|---|\n")
	for _, s := range Sets() {
		cell := func(name string, base int) string {
			if s.Vary == name {
				return fmt.Sprintf("%g..%g", s.Values[0], s.Values[len(s.Values)-1])
			}
			return fmt.Sprintf("%d", base)
		}
		dens := fmt.Sprintf("%.1f", s.Base.Density)
		if s.Vary == "density" {
			dens = fmt.Sprintf("%g..%g", s.Values[0], s.Values[len(s.Values)-1])
		}
		fmt.Fprintf(&b, "| #%d | %s | %s | %s | %s |\n",
			s.ID, cell("N", s.Base.N), cell("M", s.Base.M), cell("K", s.Base.K), dens)
	}
	return b.String()
}

// Package experiment is the evaluation harness: it reproduces the
// paper's §4 experiments — the four parameter sets of Table 2 driving
// Figures 3–6, the computation-time comparison of Figure 7, and the
// latency probe of Figure 1 — over the five approaches, with repeated
// randomized runs averaged exactly as §4.3 prescribes.
package experiment

import (
	"fmt"
	"math"
)

// Params fixes one simulated edge storage system size.
type Params struct {
	N       int     // edge servers
	M       int     // users
	K       int     // data items
	Density float64 // links per server
	// RegionScale linearly scales the deployment region's width and
	// height (0 or 1 = the fixed §4.2 CBD extent). The Table 2 sets keep
	// it at the default; the M≥10⁵ scaling rungs grow the region with
	// sqrt(N/125) so server spacing — and with it coverage overlap and
	// the sparse layout's row density — stays at the EUA-like level
	// instead of collapsing into an all-pairs dense instance.
	RegionScale float64
}

func (p Params) String() string {
	if p.RegionScale > 0 && p.RegionScale != 1 {
		return fmt.Sprintf("N=%d M=%d K=%d density=%.1f region=%.2fx", p.N, p.M, p.K, p.Density, p.RegionScale)
	}
	return fmt.Sprintf("N=%d M=%d K=%d density=%.1f", p.N, p.M, p.K, p.Density)
}

// Set is one row of Table 2: one parameter varies, the others are fixed.
type Set struct {
	ID   int
	Vary string // "N", "M", "K" or "density"
	// Values the varying parameter takes (the figure's x axis).
	Values []float64
	// Base supplies the fixed parameters.
	Base Params
}

func (s Set) String() string {
	return fmt.Sprintf("Set #%d (vary %s over %v; base %v)", s.ID, s.Vary, s.Values, s.Base)
}

// ParamsAt materializes the parameters for one x value.
func (s Set) ParamsAt(x float64) Params {
	p := s.Base
	switch s.Vary {
	case "N":
		p.N = int(math.Round(x))
	case "M":
		p.M = int(math.Round(x))
	case "K":
		p.K = int(math.Round(x))
	case "density":
		p.Density = x
	default:
		panic(fmt.Sprintf("experiment: unknown varying parameter %q", s.Vary))
	}
	return p
}

// Sets returns Table 2 verbatim:
//
//	Set #1: N = 20..50 step 5,          M=200, K=5, density=1.0
//	Set #2: M = 50..350 step 50,  N=30,        K=5, density=1.0
//	Set #3: K = 2..8 step 1,      N=30, M=200,      density=1.0
//	Set #4: density = 1.0..3.0 step 0.4, N=30, M=200, K=5
func Sets() []Set {
	return []Set{
		{
			ID: 1, Vary: "N",
			Values: []float64{20, 25, 30, 35, 40, 45, 50},
			Base:   Params{M: 200, K: 5, Density: 1.0},
		},
		{
			ID: 2, Vary: "M",
			Values: []float64{50, 100, 150, 200, 250, 300, 350},
			Base:   Params{N: 30, K: 5, Density: 1.0},
		},
		{
			ID: 3, Vary: "K",
			Values: []float64{2, 3, 4, 5, 6, 7, 8},
			Base:   Params{N: 30, M: 200, Density: 1.0},
		},
		{
			ID: 4, Vary: "density",
			Values: []float64{1.0, 1.4, 1.8, 2.2, 2.6, 3.0},
			Base:   Params{N: 30, M: 200, K: 5},
		},
	}
}

// SetByID returns the Table 2 set with the given id.
func SetByID(id int) (Set, error) {
	for _, s := range Sets() {
		if s.ID == id {
			return s, nil
		}
	}
	return Set{}, fmt.Errorf("experiment: no set #%d", id)
}

package experiment

import (
	"strings"
	"testing"

	"idde/internal/baseline"
	"idde/internal/cloudlat"
	"idde/internal/rng"
)

func TestSetsMatchTable2(t *testing.T) {
	sets := Sets()
	if len(sets) != 4 {
		t.Fatalf("sets = %d", len(sets))
	}
	s1 := sets[0]
	if s1.Vary != "N" || s1.Values[0] != 20 || s1.Values[len(s1.Values)-1] != 50 ||
		s1.Base.M != 200 || s1.Base.K != 5 || s1.Base.Density != 1.0 {
		t.Errorf("Set #1 wrong: %v", s1)
	}
	s2 := sets[1]
	if s2.Vary != "M" || s2.Values[0] != 50 || s2.Values[len(s2.Values)-1] != 350 || s2.Base.N != 30 {
		t.Errorf("Set #2 wrong: %v", s2)
	}
	s3 := sets[2]
	if s3.Vary != "K" || len(s3.Values) != 7 || s3.Values[0] != 2 || s3.Values[6] != 8 {
		t.Errorf("Set #3 wrong: %v", s3)
	}
	s4 := sets[3]
	if s4.Vary != "density" || s4.Values[0] != 1.0 || s4.Values[len(s4.Values)-1] != 3.0 {
		t.Errorf("Set #4 wrong: %v", s4)
	}
}

func TestParamsAt(t *testing.T) {
	s, err := SetByID(2)
	if err != nil {
		t.Fatal(err)
	}
	p := s.ParamsAt(250)
	if p.M != 250 || p.N != 30 || p.K != 5 || p.Density != 1.0 {
		t.Errorf("ParamsAt = %v", p)
	}
	if _, err := SetByID(9); err == nil {
		t.Error("SetByID(9) succeeded")
	}
}

func TestParamsAtUnknownVaryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Set{Vary: "bogus"}.ParamsAt(1)
}

func TestBuildInstanceDeterministic(t *testing.T) {
	p := Params{N: 12, M: 60, K: 4, Density: 1.2}
	a, err := BuildInstance(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildInstance(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Top.Servers[3] != b.Top.Servers[3] || a.Wl.Items[1] != b.Wl.Items[1] {
		t.Error("BuildInstance not deterministic")
	}
}

// smallConfig keeps harness tests fast: tiny reps, no IDDE-IP budget.
func smallConfig() Config {
	return Config{
		Reps: 2,
		Seed: 7,
		Approaches: []baseline.Approach{
			&baseline.IDDEIP{MaxIters: 500, Anneal: true},
			baseline.NewIDDEG(),
			baseline.NewSAA(),
			baseline.NewCDP(),
			baseline.NewDUPG(),
		},
		Workers: 2,
	}
}

func TestRunSetShapeAndAggregation(t *testing.T) {
	set := Set{ID: 1, Vary: "N", Values: []float64{10, 15}, Base: Params{M: 60, K: 3, Density: 1.0}}
	sr, err := RunSet(set, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 2 {
		t.Fatalf("points = %d", len(sr.Points))
	}
	for _, pt := range sr.Points {
		if len(pt.ByApproach) != 5 {
			t.Fatalf("approaches = %d", len(pt.ByApproach))
		}
		for name, m := range pt.ByApproach {
			if m.Rate.N != 2 || m.LatencyMs.N != 2 || m.TimeSec.N != 2 {
				t.Errorf("%s: wrong rep counts %d/%d/%d", name, m.Rate.N, m.LatencyMs.N, m.TimeSec.N)
			}
			if m.Rate.Mean <= 0 {
				t.Errorf("%s: non-positive rate", name)
			}
			if m.LatencyMs.Mean < 0 {
				t.Errorf("%s: negative latency", name)
			}
		}
	}
}

func TestRunSetDeterministicMetrics(t *testing.T) {
	set := Set{ID: 3, Vary: "K", Values: []float64{3}, Base: Params{N: 10, M: 50, Density: 1.0}}
	cfg := smallConfig()
	a, err := RunSet(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSet(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name := range a.Points[0].ByApproach {
		ra, rb := a.Points[0].ByApproach[name].Rate, b.Points[0].ByApproach[name].Rate
		if ra.Mean != rb.Mean {
			t.Errorf("%s: rate means differ across identical runs: %v vs %v", name, ra.Mean, rb.Mean)
		}
		la, lb := a.Points[0].ByApproach[name].LatencyMs, b.Points[0].ByApproach[name].LatencyMs
		if la.Mean != lb.Mean {
			t.Errorf("%s: latency means differ: %v vs %v", name, la.Mean, lb.Mean)
		}
	}
}

func TestRunSetRejectsBadConfig(t *testing.T) {
	set, _ := SetByID(1)
	if _, err := RunSet(set, Config{Reps: 0}); err == nil {
		t.Error("Reps=0 accepted")
	}
}

func TestFormatters(t *testing.T) {
	set := Set{ID: 2, Vary: "M", Values: []float64{40, 80}, Base: Params{N: 10, K: 3, Density: 1.0}}
	sr, err := RunSet(set, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	md := sr.MarkdownTable(RateMetric)
	for _, want := range []string{"| M |", "IDDE-G", "SAA", "CDP", "DUP-G", "IDDE-IP", "| 40 |", "| 80 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	csv := sr.CSV(LatencyMetric)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "M,") {
		t.Errorf("csv header = %q", lines[0])
	}
	if got := len(strings.Split(lines[1], ",")); got != 6 {
		t.Errorf("csv columns = %d", got)
	}
	ciTable := sr.MarkdownTableCI(RateMetric)
	if !strings.Contains(ciTable, "±") || !strings.Contains(ciTable, "95% CI") {
		t.Errorf("CI table missing interval markers:\n%s", ciTable)
	}
	xs, labels, ys := sr.SeriesFor(LatencyMetric)
	if len(xs) != 2 || len(labels) != 5 || len(ys) != 5 || len(ys[0]) != 2 {
		t.Errorf("SeriesFor shape wrong: %d/%d/%d", len(xs), len(labels), len(ys))
	}
	timing := TimingMarkdown([]*SetResult{sr})
	if !strings.Contains(timing, "| #2 |") {
		t.Errorf("timing table missing set row:\n%s", timing)
	}
	tb2 := Table2Markdown()
	if !strings.Contains(tb2, "| #1 | 20..50 | 200 | 5 | 1.0 |") {
		t.Errorf("Table 2 wrong:\n%s", tb2)
	}
	if !strings.Contains(tb2, "| #4 | 30 | 200 | 5 | 1..3 |") {
		t.Errorf("Table 2 density row wrong:\n%s", tb2)
	}
	f1 := Fig1Markdown(cloudlat.Collect(cloudlat.DefaultTargets(), rng.New(1)))
	for _, want := range []string{"Edge", "Singapore", "London", "Frankfurt", "Edge-to-Cloud"} {
		if !strings.Contains(f1, want) {
			t.Errorf("fig1 missing %q", want)
		}
	}
}

func TestAdvantageOrientation(t *testing.T) {
	set := Set{ID: 1, Vary: "N", Values: []float64{12}, Base: Params{M: 80, K: 4, Density: 1.0}}
	sr, err := RunSet(set, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// IDDE-G must show non-negative advantage over SAA on both axes
	// (the paper's headline claims).
	if adv := sr.Advantage("SAA", RateMetric); adv <= 0 {
		t.Errorf("rate advantage over SAA = %v", adv)
	}
	if adv := sr.Advantage("DUP-G", LatencyMetric); adv <= 0 {
		t.Errorf("latency advantage over DUP-G = %v", adv)
	}
	if adv := sr.Advantage("no-such", RateMetric); adv != 0 {
		t.Errorf("advantage over unknown approach = %v", adv)
	}
}

func TestMetricStrings(t *testing.T) {
	if RateMetric.String() == "" || LatencyMetric.String() == "" || TimeMetric.String() == "" {
		t.Error("metric strings empty")
	}
	if Metric(9).String() == "" {
		t.Error("unknown metric string empty")
	}
}

// Package stats provides the descriptive statistics used by the
// experiment harness: each data point in the paper's figures is the
// average of 50 independent runs (§4.3), so the harness accumulates
// per-run metrics here and reports means with dispersion.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc accumulates scalar observations with Welford's online algorithm,
// which stays numerically stable for long runs. The zero value is ready
// to use.
type Acc struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N reports the number of observations.
func (a *Acc) N() int { return a.n }

// Mean reports the sample mean (0 when empty).
func (a *Acc) Mean() float64 { return a.mean }

// Var reports the unbiased sample variance (0 with fewer than two
// observations).
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std reports the sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// Min and Max report observed extremes (0 when empty).
func (a *Acc) Min() float64 { return a.min }
func (a *Acc) Max() float64 { return a.max }

// CI95 reports the half-width of the ~95% confidence interval on the
// mean, using the normal approximation (adequate at the 50 replicas the
// harness runs).
func (a *Acc) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.Std() / math.Sqrt(float64(a.n))
}

// Summary snapshots an accumulator into a value type.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	CI95      float64
}

// Summary returns a snapshot of the accumulator.
func (a *Acc) Summary() Summary {
	return Summary{N: a.n, Mean: a.Mean(), Std: a.Std(), Min: a.min, Max: a.max, CI95: a.CI95()}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g (std=%.3g, min=%.4g, max=%.4g)",
		s.N, s.Mean, s.CI95, s.Std, s.Min, s.Max)
}

// Mean computes the mean of a slice (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile reports the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It panics on an empty slice or
// a p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: Percentile out of range")
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if len(ys) == 1 {
		return ys[0]
	}
	pos := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// GeoMean reports the geometric mean of strictly positive values, the
// conventional way to aggregate speedup ratios across experiment sets.
// Non-positive inputs cause a panic.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// RelAdvantage reports how much better `ours` is than `theirs` as a
// fraction, in the orientation the paper quotes:
//   - higherIsBetter: (ours − theirs)/theirs   (e.g. data rate, +9.2%)
//   - !higherIsBetter: (theirs − ours)/theirs  (e.g. latency, +82.6%)
func RelAdvantage(ours, theirs float64, higherIsBetter bool) float64 {
	if theirs == 0 {
		return 0
	}
	if higherIsBetter {
		return (ours - theirs) / theirs
	}
	return (theirs - ours) / theirs
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if math.Abs(a.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v, want %v", a.Var(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccEmptyAndSingle(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Var() != 0 || a.CI95() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Var() != 0 || a.Min() != 3 || a.Max() != 3 {
		t.Error("single observation stats wrong")
	}
}

func TestAccMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				continue
			}
			xs = append(xs, math.Mod(r, 1e6))
		}
		if len(xs) < 2 {
			return true
		}
		var a Acc
		for _, x := range xs {
			a.Add(x)
		}
		mean := Mean(xs)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(a.Mean()-mean) < 1e-8*math.Max(1, math.Abs(mean)) &&
			math.Abs(a.Var()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var a Acc
	a.Add(1)
	a.Add(3)
	s := a.Summary()
	if s.N != 2 || s.Mean != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if p := Percentile(xs, 0); p != 15 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 35 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(xs, 25); p != 20 {
		t.Errorf("p25 = %v", p)
	}
	// Input must not be mutated.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated input")
	}
	if p := Percentile([]float64{7}, 60); p != 7 {
		t.Errorf("singleton percentile = %v", p)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty", func() { Percentile(nil, 50) }},
		{"below", func() { Percentile([]float64{1}, -1) }},
		{"above", func() { Percentile([]float64{1}, 101) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestRelAdvantage(t *testing.T) {
	// Rate orientation: ours 110 vs theirs 100 → +10%.
	if v := RelAdvantage(110, 100, true); math.Abs(v-0.10) > 1e-12 {
		t.Errorf("rate advantage = %v", v)
	}
	// Latency orientation: ours 5ms vs theirs 20ms → 75% lower.
	if v := RelAdvantage(5, 20, false); math.Abs(v-0.75) > 1e-12 {
		t.Errorf("latency advantage = %v", v)
	}
	if v := RelAdvantage(5, 0, false); v != 0 {
		t.Errorf("zero baseline should yield 0, got %v", v)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Acc
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 5))
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

package idde

import (
	"reflect"
	"testing"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/geo"
	"idde/internal/graph"
	"idde/internal/model"
	"idde/internal/placement"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// The end-to-end differential suite for the Phase 2 performance work:
// the cohort-aggregated oracle, the swap-remove Greedy and the parallel
// seed scan must all commit the replica sequence the literal
// per-request reference commits, so every figure CSV is unchanged by
// the optimization.

// deliveryCombos runs Phase 2 on the six oracle×engine combinations:
// optimized (cohort + parallel-seeded CELF), cohort + literal re-scan,
// the Commit-batching oracle with per-item staleness epochs (alone and
// with the parallel seed scan), naive oracle + sequential CELF, and the
// full reference (naive oracle + literal re-scan).
func deliveryCombos(in *model.Instance, alloc model.Allocation) []struct {
	name string
	d    *model.Delivery
	res  placement.Result
} {
	seq := placement.NewOptions(placement.Options{})
	par := placement.NewOptions(placement.Options{Parallel: true, ParallelThreshold: 1})
	combos := []struct {
		name string
		opt  core.Options
	}{
		{"cohort+lazy-parallel", core.Options{Placement: par}},
		{"cohort+naive-greedy", core.Options{NaiveGreedy: true}},
		{"batch+lazy", core.Options{CohortBatch: true, Placement: seq}},
		{"batch+lazy-parallel", core.Options{CohortBatch: true, Placement: par}},
		{"naive-oracle+lazy", core.Options{NaiveLatency: true, Placement: seq}},
		{"reference", core.Options{NaiveLatency: true, NaiveGreedy: true}},
	}
	out := make([]struct {
		name string
		d    *model.Delivery
		res  placement.Result
	}, len(combos))
	for idx, c := range combos {
		d, res := core.SolveDeliveryOpt(in, alloc, c.opt)
		out[idx] = struct {
			name string
			d    *model.Delivery
			res  placement.Result
		}{c.name, d, res}
	}
	return out
}

// checkCombosAgree asserts every combination committed the identical
// replica sequence and delivery profile with the bit-identical total
// gain: the reference walk shares the cohort fold order by design (see
// model.LatencyState), so even the cross-oracle comparison is exact —
// anything weaker would let mathematically tied candidates resolve
// differently between the optimized and reference paths.
func checkCombosAgree(t *testing.T, label string, in *model.Instance, alloc model.Allocation) {
	t.Helper()
	combos := deliveryCombos(in, alloc)
	base := combos[0]
	for _, c := range combos[1:] {
		if !reflect.DeepEqual(c.res.Chosen, base.res.Chosen) {
			t.Fatalf("%s: %s chose a different replica sequence than %s:\n%v\nvs\n%v",
				label, c.name, base.name, c.res.Chosen, base.res.Chosen)
		}
		if !reflect.DeepEqual(c.d, base.d) {
			t.Fatalf("%s: %s delivery profile diverges from %s", label, c.name, base.name)
		}
		if c.res.TotalGain != base.res.TotalGain {
			t.Fatalf("%s: %s total gain diverges from %s: %g vs %g",
				label, c.name, base.name, c.res.TotalGain, base.res.TotalGain)
		}
	}
}

// TestDeliveryCohortMatchesReferenceOnGrid sweeps the sampled Table 2
// grid with equilibrium allocations from Phase 1 — the production
// pipeline — and pins all four oracle×engine combinations to one
// committed sequence.
func TestDeliveryCohortMatchesReferenceOnGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid differential sweep")
	}
	for _, p := range sampledParams(t) {
		in, err := experiment.BuildInstance(p, 2022)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		alloc, _ := core.SolvePhase1(in, core.DefaultOptions())
		checkCombosAgree(t, p.String(), in, alloc)
	}
}

// TestDeliveryCohortMatchesReferenceOnPartialAllocations feeds Phase 2
// seeded random allocations that leave a slice of users unallocated
// (their requests are pinned at cloud latency and must not contribute
// to any gain) instead of Phase 1 equilibria.
func TestDeliveryCohortMatchesReferenceOnPartialAllocations(t *testing.T) {
	for _, seed := range []uint64{3, 17, 2022} {
		in, err := experiment.BuildInstance(experiment.Params{N: 20, M: 150, K: 6, Density: 1.0}, seed)
		if err != nil {
			t.Fatal(err)
		}
		s := rng.New(seed * 7)
		alloc := model.NewAllocation(in.M())
		for j := 0; j < in.M(); j++ {
			vs := in.Top.Coverage[j]
			if len(vs) == 0 || s.Bool(0.2) {
				continue // leave unallocated
			}
			i := vs[s.IntN(len(vs))]
			alloc[j] = model.Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)}
		}
		checkCombosAgree(t, "partial", in, alloc)
	}
}

// tieInstance builds a mirror-symmetric 2-server instance where the two
// candidates (v0,d0) and (v1,d0) have exactly equal gain and equal
// cost: u0 on v0 and u1 on v1 both request d0, the servers are
// identical, and the link is symmetric. The gain-per-cost ratios tie
// bit-exactly, so only the candidate-index tie-break separates them.
func tieInstance(t *testing.T) (*model.Instance, model.Allocation) {
	t.Helper()
	top := &topology.Topology{
		Region: geo.Rect{MinX: -100, MinY: -100, MaxX: 700, MaxY: 100},
		Servers: []topology.Server{
			{ID: 0, Pos: geo.Point{X: 0, Y: 0}, Radius: 250, Channels: 2, Bandwidth: 200},
			{ID: 1, Pos: geo.Point{X: 600, Y: 0}, Radius: 250, Channels: 2, Bandwidth: 200},
		},
		Users: []topology.User{
			{ID: 0, Pos: geo.Point{X: 100, Y: 0}, Power: 2, MaxRate: 200},
			{ID: 1, Pos: geo.Point{X: 500, Y: 0}, Power: 2, MaxRate: 200},
		},
		Net:       graph.New(2),
		CloudRate: 600,
	}
	top.Net.AddEdge(0, 1, units.PerMB(3000))
	if err := top.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	wl := &workload.Workload{
		Items:    []workload.Item{{ID: 0, Size: 30}},
		Requests: [][]int{{0}, {0}},
		Capacity: []units.MegaBytes{30, 30},
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	alloc := model.Allocation{
		{Server: 0, Channel: 0},
		{Server: 1, Channel: 0},
	}
	return in, alloc
}

// TestDeliveryExactTieBreaksByCandidateIndex pins the exact-tie rule
// end to end: with two bit-identical gain-per-cost candidates, every
// oracle×engine combination must commit (v0,d0) first — ascending
// candidate index — and then (v1,d0).
func TestDeliveryExactTieBreaksByCandidateIndex(t *testing.T) {
	in, alloc := tieInstance(t)
	want := []placement.Candidate{{Server: 0, Item: 0}, {Server: 1, Item: 0}}
	for _, c := range deliveryCombos(in, alloc) {
		if !reflect.DeepEqual(c.res.Chosen, want) {
			t.Fatalf("%s broke the exact tie differently: %v", c.name, c.res.Chosen)
		}
	}
}

// TestDeliverySkipsUnrequestedItems pins the zero-requester satellite:
// items nobody requests are excluded from the candidate list, so the
// seed scan shrinks accordingly and the committed profile never places
// them.
func TestDeliverySkipsUnrequestedItems(t *testing.T) {
	in, err := experiment.BuildInstance(experiment.Params{N: 10, M: 30, K: 12, Density: 1.0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	requested := make(map[int]bool)
	for _, items := range in.Wl.Requests {
		for _, k := range items {
			requested[k] = true
		}
	}
	if len(requested) == in.K() {
		t.Skip("workload draw requested every item; no unrequested items to skip")
	}
	alloc, _ := core.SolvePhase1(in, core.DefaultOptions())
	d, res := core.SolveDeliveryOpt(in, alloc, core.Options{NaiveGreedy: true})
	// The literal re-scan evaluates every candidate each round: with
	// unrequested items skipped, the first-round evaluation count is at
	// most N × requested-items.
	if maxSeed := in.N() * len(requested); res.Evaluations > maxSeed*(len(res.Chosen)+1) {
		t.Fatalf("evaluations %d exceed the requested-items bound %d×%d",
			res.Evaluations, maxSeed, len(res.Chosen)+1)
	}
	for k := 0; k < in.K(); k++ {
		if requested[k] {
			continue
		}
		for i := 0; i < in.N(); i++ {
			if d.Placed(i, k) {
				t.Fatalf("unrequested item %d placed on server %d", k, i)
			}
		}
	}
}

package idde

import (
	"fmt"

	"idde/internal/chaos"
	"idde/internal/rng"
	"idde/internal/stats"
	"idde/internal/units"
)

// ChaosConfig parameterizes a Monte-Carlo chaos sweep: every campaign
// draws a spatially-correlated cluster of server outages (plus optional
// link cuts and a cloud-ingress brownout) around a random epicenter,
// replays it through incremental repair, and measures the degraded
// system on the discrete-event simulator under the fault profile.
type ChaosConfig struct {
	// Campaigns is the number of seeded campaigns to draw (default 20).
	Campaigns int
	// ClusterSize is the number of geographically-clustered servers
	// taken down per campaign (default 2).
	ClusterSize int
	// OutageSeconds is how long the outage lasts before the servers
	// recover; 0 makes the failure permanent.
	OutageSeconds float64
	// LinkCuts severs that many surviving wired links per campaign.
	LinkCuts int
	// BrownoutFactor in (0,1) scales the cloud ingress rate for
	// BrownoutSeconds (0 disables the brownout; 0 duration with a
	// factor set makes it permanent).
	BrownoutFactor  float64
	BrownoutSeconds float64
	// Faults is the transfer-level fault model active while any
	// degradation is.
	Faults FaultProfile
	// SpreadSeconds is the per-epoch request arrival window.
	SpreadSeconds float64
	// Seed makes the whole sweep reproducible.
	Seed uint64
}

// MetricSummary aggregates one degradation metric over the sweep's
// campaigns (worst-epoch values, except the Total* counters).
type MetricSummary struct {
	Mean, CI95, Min, Max float64
}

func metric(s stats.Summary) MetricSummary {
	return MetricSummary{Mean: s.Mean, CI95: s.CI95, Min: s.Min, Max: s.Max}
}

// ChaosSummary is the aggregate outcome of a chaos sweep.
type ChaosSummary struct {
	Campaigns int
	// StrandedFrac is the fraction of baseline-served users left with
	// no edge service; LatencyInflation the DES latency ratio to the
	// healthy baseline; RateDrop the analytic rate loss fraction.
	StrandedFrac     MetricSummary
	LatencyInflation MetricSummary
	RateDrop         MetricSummary
	// Retries/Failovers count transfer-level recoveries per campaign;
	// Moves/ReplicasLost/ReplicasReplaced account the repair work.
	Retries          MetricSummary
	Failovers        MetricSummary
	Moves            MetricSummary
	ReplicasLost     MetricSummary
	ReplicasReplaced MetricSummary

	// Markdown is a rendered summary table; JSON the full per-campaign
	// report (epoch by epoch) for machine consumption.
	Markdown string
	JSON     string
}

// ChaosSweep draws and replays cfg.Campaigns correlated-failure
// campaigns against the strategy. Identical configurations (including
// Seed) produce identical summaries.
func (sc *Scenario) ChaosSweep(st *Strategy, cfg ChaosConfig) (*ChaosSummary, error) {
	if st == nil || st.sc != sc {
		return nil, fmt.Errorf("idde: strategy does not belong to this scenario")
	}
	cluster := cfg.ClusterSize
	if cluster <= 0 {
		cluster = 2
	}
	gc := chaos.GenConfig{
		ClusterSize:      cluster,
		OutageDuration:   units.Seconds(cfg.OutageSeconds),
		LinkCuts:         cfg.LinkCuts,
		BrownoutFactor:   cfg.BrownoutFactor,
		BrownoutDuration: units.Seconds(cfg.BrownoutSeconds),
		Faults:           cfg.Faults.raw(),
	}
	gen := func(i int, s *rng.Stream) chaos.Campaign {
		return chaos.Correlated(sc.in, gc, s)
	}
	sw, err := chaos.MonteCarlo(sc.in, st.raw, gen, chaos.SweepConfig{
		Config: chaos.Config{
			Seed:   cfg.Seed,
			Spread: units.Seconds(cfg.SpreadSeconds),
		},
		Campaigns: cfg.Campaigns,
	})
	if err != nil {
		return nil, err
	}
	js, err := sw.JSON()
	if err != nil {
		return nil, err
	}
	return &ChaosSummary{
		Campaigns:        sw.Campaigns,
		StrandedFrac:     metric(sw.Stranded),
		LatencyInflation: metric(sw.LatencyInflation),
		RateDrop:         metric(sw.RateDrop),
		Retries:          metric(sw.Retries),
		Failovers:        metric(sw.Failovers),
		Moves:            metric(sw.Moves),
		ReplicasLost:     metric(sw.ReplicasLost),
		ReplicasReplaced: metric(sw.ReplicasReplaced),
		Markdown:         sw.MarkdownSummary(),
		JSON:             js,
	}, nil
}
